"""Tests for the network/crypto/transfer models (Tables 2-3)."""

import pytest

from repro.security.crypto import (
    AES128_SHA1,
    BLOWFISH_SHA1,
    PIII_866,
    TRIPLE_DES_SHA1,
    CipherSuite,
    HostCpu,
)
from repro.security.network import FAST_ETHERNET, GIGABIT_ETHERNET, NetworkLink
from repro.security.transfer import (
    RCP,
    SCP,
    TransferEndpoint,
    TransferProtocol,
    simulate_transfer,
    transfer_overhead,
)


class TestNetworkLink:
    def test_throughput_below_line_rate(self):
        assert FAST_ETHERNET.throughput_mbs < 100 / 8
        assert FAST_ETHERNET.throughput_mbs == pytest.approx(9.77, rel=0.05)

    def test_gigabit_ten_times_faster(self):
        ratio = GIGABIT_ETHERNET.throughput_mbs / FAST_ETHERNET.throughput_mbs
        assert ratio == pytest.approx(10.0)

    def test_transfer_seconds_linear(self):
        t1 = FAST_ETHERNET.transfer_seconds(100)
        t2 = FAST_ETHERNET.transfer_seconds(200)
        assert t2 - t1 == pytest.approx(100 / FAST_ETHERNET.throughput_mbs)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink("x", line_rate_mbps=0)
        with pytest.raises(ValueError):
            NetworkLink("x", line_rate_mbps=100, efficiency=1.5)
        with pytest.raises(ValueError):
            FAST_ETHERNET.transfer_seconds(-1)


class TestCipherSuite:
    def test_3des_on_piii_is_cipher_era_slow(self):
        rate = TRIPLE_DES_SHA1.throughput_mbs(PIII_866)
        assert 5.0 < rate < 8.0

    def test_faster_ciphers_rank_correctly(self):
        r3des = TRIPLE_DES_SHA1.throughput_mbs(PIII_866)
        rblow = BLOWFISH_SHA1.throughput_mbs(PIII_866)
        raes = AES128_SHA1.throughput_mbs(PIII_866)
        assert r3des < rblow < raes

    def test_throughput_scales_with_clock(self):
        fast_cpu = HostCpu("modern", clock_mhz=3000.0)
        assert TRIPLE_DES_SHA1.throughput_mbs(fast_cpu) > TRIPLE_DES_SHA1.throughput_mbs(PIII_866)

    def test_validation(self):
        with pytest.raises(ValueError):
            CipherSuite("bad", cycles_per_byte=0)
        with pytest.raises(ValueError):
            HostCpu("bad", clock_mhz=-1)


class TestSimulateTransfer:
    def test_scp_always_slower_than_rcp(self):
        for link in (FAST_ETHERNET, GIGABIT_ETHERNET):
            for size in (1, 10, 100, 1000):
                assert simulate_transfer(size, SCP, link) > simulate_transfer(size, RCP, link)

    def test_zero_size_is_handshake_only(self):
        t = simulate_transfer(0, SCP, FAST_ETHERNET)
        assert t == pytest.approx(SCP.handshake_s + FAST_ETHERNET.latency_s)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            simulate_transfer(-1, RCP, FAST_ETHERNET)

    def test_rcp_network_bound_on_fast_ethernet(self):
        t100 = simulate_transfer(100, RCP, FAST_ETHERNET)
        t1000 = simulate_transfer(1000, RCP, FAST_ETHERNET)
        rate = 900 / (t1000 - t100)
        assert rate == pytest.approx(FAST_ETHERNET.throughput_mbs, rel=1e-6)

    def test_rcp_disk_bound_on_gigabit(self):
        t100 = simulate_transfer(100, RCP, GIGABIT_ETHERNET)
        t1000 = simulate_transfer(1000, RCP, GIGABIT_ETHERNET)
        rate = 900 / (t1000 - t100)
        assert rate == pytest.approx(TransferEndpoint().disk_mbs, rel=1e-6)

    def test_scp_cipher_bound_on_both_links(self):
        """The cipher bottleneck makes scp equally slow on both networks."""
        t_fast = simulate_transfer(1000, SCP, FAST_ETHERNET)
        t_giga = simulate_transfer(1000, SCP, GIGABIT_ETHERNET)
        assert t_fast == pytest.approx(t_giga, rel=0.01)

    def test_fast_cipher_removes_bottleneck(self):
        modern = TransferProtocol("scp-aes", handshake_s=0.5, cipher=AES128_SHA1)
        t = simulate_transfer(1000, modern, GIGABIT_ETHERNET)
        assert t < simulate_transfer(1000, SCP, GIGABIT_ETHERNET)


class TestPaperShape:
    """The qualitative claims of Tables 2-3."""

    def test_table2_large_file_overhead_near_37_percent(self):
        ovh = transfer_overhead(1000, FAST_ETHERNET)
        assert 0.30 <= ovh <= 0.42

    def test_table3_large_file_overhead_near_67_percent(self):
        ovh = transfer_overhead(1000, GIGABIT_ETHERNET)
        assert 0.60 <= ovh <= 0.78

    def test_small_files_dominated_by_handshake(self):
        assert transfer_overhead(1, FAST_ETHERNET) > 0.6

    def test_overhead_grows_with_network_speed(self):
        """Security negates the benefit of the faster network."""
        for size in (100, 500, 1000):
            assert transfer_overhead(size, GIGABIT_ETHERNET) > transfer_overhead(
                size, FAST_ETHERNET
            )

    def test_overhead_definition_matches_paper(self):
        """Overhead = 1 - rcp/scp (the paper's column formula)."""
        r = simulate_transfer(500, RCP, FAST_ETHERNET)
        s = simulate_transfer(500, SCP, FAST_ETHERNET)
        assert transfer_overhead(500, FAST_ETHERNET) == pytest.approx(1 - r / s)
