"""Tests for per-request security planning."""

import pytest

from repro.grid.activities import ActivityCatalog, ActivitySet
from repro.security.overhead import DEFAULT_LADDER
from repro.security.plan import plan_supplement


@pytest.fixture
def catalog():
    return ActivityCatalog(["execute", "store", "print"])


def acts(catalog, *names):
    return ActivitySet.of([catalog.by_name(n) for n in names])


class TestPlanSupplement:
    def test_zero_tc_is_trivial(self, catalog):
        plan = plan_supplement(acts(catalog, "execute"), 0)
        assert plan.is_trivial
        assert plan.overhead_fraction == 0.0
        assert "no supplemental security" in plan.describe()

    def test_total_overhead_matches_ladder(self, catalog):
        for tc in range(7):
            plan = plan_supplement(acts(catalog, "execute", "store"), tc)
            assert plan.overhead_fraction == pytest.approx(
                DEFAULT_LADDER.overhead(tc)
            )

    def test_mechanisms_distributed_over_activities(self, catalog):
        plan = plan_supplement(acts(catalog, "execute", "store"), 4)
        per_activity = {a.activity_name: len(a.mechanisms) for a in plan.activities}
        # Four engaged rungs over two activities: two each (round-robin).
        assert per_activity == {"execute": 2, "store": 2}

    def test_atomic_activity_gets_everything(self, catalog):
        plan = plan_supplement(acts(catalog, "print"), 3)
        assert len(plan.activities) == 1
        assert len(plan.activities[0].mechanisms) == 3

    def test_describe_lists_mechanisms(self, catalog):
        text = plan_supplement(acts(catalog, "execute"), 2).describe()
        assert "integrity checksums" in text
        assert "wire encryption" in text
        assert "total overhead" in text

    def test_tc_bounds(self, catalog):
        with pytest.raises(ValueError):
            plan_supplement(acts(catalog, "execute"), -1)
        with pytest.raises(ValueError):
            plan_supplement(acts(catalog, "execute"), 7)

    def test_plan_consistent_with_linear_model_scale(self, catalog):
        """Plans stay within ~where the paper's linear model puts them."""
        from repro.security.overhead import linear_supplement_fraction

        for tc in range(7):
            plan = plan_supplement(acts(catalog, "execute"), tc)
            linear = linear_supplement_fraction(tc)
            assert abs(plan.overhead_fraction - linear) < 0.12
