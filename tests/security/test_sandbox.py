"""Tests for the SFI sandboxing models."""

import numpy as np
import pytest

from repro.security.sandbox import (
    BENCHMARK_APPS,
    LOGICAL_LOG_DISK,
    MD5_DIGEST,
    MISFIT,
    PAGE_EVICTION_HOTLIST,
    SASI_X86SFI,
    InstructionMix,
    SfiTool,
    predicted_overhead,
    simulate_sandboxed_run,
)

PAPER = {
    PAGE_EVICTION_HOTLIST.name: (1.37, 2.64),
    LOGICAL_LOG_DISK.name: (0.58, 0.65),
    MD5_DIGEST.name: (0.33, 0.36),
}


class TestInstructionMix:
    def test_fractions_validated(self):
        with pytest.raises(ValueError):
            InstructionMix("x", write_frac=0.6, read_frac=0.6, jump_frac=0.0)
        with pytest.raises(ValueError):
            InstructionMix("x", write_frac=-0.1, read_frac=0.0, jump_frac=0.0)

    def test_other_frac_completes_to_one(self):
        mix = InstructionMix("x", 0.2, 0.3, 0.1)
        assert mix.other_frac == pytest.approx(0.4)


class TestSfiTool:
    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            SfiTool("x", write_check=-1.0, read_check=0.0, jump_check=0.0)

    def test_misfit_does_not_guard_reads(self):
        assert MISFIT.read_check == 0.0
        assert SASI_X86SFI.read_check > 0.0


class TestPredictedOverhead:
    @pytest.mark.parametrize("app", BENCHMARK_APPS, ids=lambda a: a.name)
    def test_calibration_close_to_paper(self, app):
        paper_misfit, paper_sasi = PAPER[app.name]
        assert predicted_overhead(app, MISFIT) == pytest.approx(paper_misfit, rel=0.05)
        assert predicted_overhead(app, SASI_X86SFI) == pytest.approx(paper_sasi, rel=0.05)

    def test_ordering_hotlist_dominates(self):
        for tool in (MISFIT, SASI_X86SFI):
            o_hot = predicted_overhead(PAGE_EVICTION_HOTLIST, tool)
            o_lld = predicted_overhead(LOGICAL_LOG_DISK, tool)
            o_md5 = predicted_overhead(MD5_DIGEST, tool)
            assert o_hot > o_lld > o_md5

    def test_sasi_never_cheaper_than_misfit(self):
        for app in BENCHMARK_APPS:
            assert predicted_overhead(app, SASI_X86SFI) >= predicted_overhead(app, MISFIT)

    def test_sasi_gap_largest_for_read_heavy_app(self):
        gaps = {
            app.name: predicted_overhead(app, SASI_X86SFI) - predicted_overhead(app, MISFIT)
            for app in BENCHMARK_APPS
        }
        assert max(gaps, key=gaps.get) == PAGE_EVICTION_HOTLIST.name


class TestSimulatedRun:
    def test_converges_to_prediction(self, rng):
        for app in BENCHMARK_APPS:
            sim = simulate_sandboxed_run(app, MISFIT, rng, n_instructions=300_000)
            assert sim == pytest.approx(predicted_overhead(app, MISFIT), rel=0.05)

    def test_deterministic_per_seed(self):
        a = simulate_sandboxed_run(MD5_DIGEST, MISFIT, np.random.default_rng(5))
        b = simulate_sandboxed_run(MD5_DIGEST, MISFIT, np.random.default_rng(5))
        assert a == b

    def test_invalid_length(self, rng):
        with pytest.raises(ValueError):
            simulate_sandboxed_run(MD5_DIGEST, MISFIT, rng, n_instructions=0)
