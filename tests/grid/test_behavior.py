"""Tests for ground-truth behaviour profiles."""

import numpy as np
import pytest

from repro.grid.behavior import (
    BehaviorModel,
    DegradingBehavior,
    FlipBehavior,
    OscillatingBehavior,
    StationaryBehavior,
)


class TestStationaryBehavior:
    def test_mean_constant(self):
        b = StationaryBehavior(mean=0.7)
        assert b.mean_at(0.0) == b.mean_at(1e6) == 0.7

    def test_samples_bounded_and_centered(self, rng):
        b = StationaryBehavior(mean=0.7, noise=0.1)
        samples = [b.sample(0.0, rng) for _ in range(2000)]
        assert all(0.0 <= s <= 1.0 for s in samples)
        assert np.mean(samples) == pytest.approx(0.7, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            StationaryBehavior(mean=1.5)
        with pytest.raises(ValueError):
            StationaryBehavior(mean=0.5, noise=-0.1)


class TestDegradingBehavior:
    def test_linear_path(self):
        b = DegradingBehavior(start=1.0, floor=0.0, horizon=10.0)
        assert b.mean_at(0.0) == 1.0
        assert b.mean_at(5.0) == pytest.approx(0.5)
        assert b.mean_at(10.0) == 0.0
        assert b.mean_at(100.0) == 0.0  # clamps at the floor

    def test_negative_time_clamped(self):
        b = DegradingBehavior(start=0.9, floor=0.1, horizon=10.0)
        assert b.mean_at(-5.0) == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradingBehavior(start=2.0, floor=0.0, horizon=1.0)
        with pytest.raises(ValueError):
            DegradingBehavior(start=0.5, floor=0.1, horizon=0.0)


class TestOscillatingBehavior:
    def test_range_and_period(self):
        b = OscillatingBehavior(low=0.2, high=0.8, period=100.0, noise=0.0)
        means = [b.mean_at(t) for t in np.linspace(0, 100, 200)]
        assert min(means) >= 0.2 - 1e-9
        assert max(means) <= 0.8 + 1e-9
        assert b.mean_at(0.0) == pytest.approx(b.mean_at(100.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            OscillatingBehavior(low=0.8, high=0.2, period=10.0)


class TestFlipBehavior:
    def test_switch(self):
        b = FlipBehavior(before=0.9, after=0.1, flip_time=50.0)
        assert b.mean_at(49.9) == 0.9
        assert b.mean_at(50.0) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            FlipBehavior(before=0.9, after=0.1, flip_time=-1.0)


class TestBehaviorModel:
    def test_profile_lookup_with_default(self):
        model = BehaviorModel(
            profiles={0: StationaryBehavior(0.9)},
            default=StationaryBehavior(0.5),
        )
        assert model.profile_for(0).mean_at(0) == 0.9
        assert model.profile_for(7).mean_at(0) == 0.5

    def test_uniform_factory(self, rng):
        model = BehaviorModel.uniform(mean=0.6)
        assert model.profile_for(3).mean_at(0) == 0.6
        assert 0.0 <= model.sample(3, 0.0, rng) <= 1.0
