"""Tests for repro.grid.activities."""

import pytest

from repro.grid.activities import ActivityCatalog, ActivitySet, ActivityType


class TestActivityType:
    def test_context_bridge(self):
        a = ActivityType(index=0, name="execute")
        assert a.context.name == "execute"

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivityType(index=-1, name="x")
        with pytest.raises(ValueError):
            ActivityType(index=0, name="")


class TestActivityCatalog:
    def test_dense_indices_in_registration_order(self):
        catalog = ActivityCatalog(["a", "b", "c"])
        assert [act.index for act in catalog] == [0, 1, 2]
        assert catalog.by_index(1).name == "b"

    def test_register_is_idempotent(self):
        catalog = ActivityCatalog()
        first = catalog.register("x")
        second = catalog.register("x")
        assert first is second
        assert len(catalog) == 1

    def test_by_name(self):
        catalog = ActivityCatalog(["store"])
        assert catalog.by_name("store").index == 0
        with pytest.raises(KeyError):
            catalog.by_name("nope")

    def test_contains(self):
        catalog = ActivityCatalog(["a"])
        assert "a" in catalog and "b" not in catalog

    def test_default_catalog_matches_paper(self):
        catalog = ActivityCatalog.default()
        assert len(catalog) == 4
        assert catalog.by_index(0).name == "toa-0"

    def test_default_rejects_zero(self):
        with pytest.raises(ValueError):
            ActivityCatalog.default(0)


class TestActivitySet:
    def test_atomic(self):
        a = ActivityType(0, "x")
        s = ActivitySet.of(a)
        assert s.is_atomic
        assert s.indices == (0,)
        assert len(s) == 1

    def test_composed(self):
        catalog = ActivityCatalog(["a", "b", "c"])
        s = ActivitySet.of([catalog.by_name("a"), catalog.by_name("c")])
        assert not s.is_atomic
        assert s.indices == (0, 2)
        assert [x.name for x in s] == ["a", "c"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ActivitySet(())

    def test_duplicates_rejected(self):
        a = ActivityType(0, "x")
        with pytest.raises(ValueError):
            ActivitySet.of([a, a])
