"""Tests for repro.grid.topology (Grid + GridBuilder)."""

import numpy as np
import pytest

from repro.core.ets import EtsTable
from repro.errors import ConfigurationError
from repro.grid.activities import ActivityCatalog
from repro.grid.topology import GridBuilder


class TestGridBuilder:
    def test_small_grid_shape(self, small_grid):
        assert small_grid.n_machines == 3
        assert len(small_grid.client_domains) == 2
        assert len(small_grid.resource_domains) == 2
        assert small_grid.trust_table.shape == (2, 2, 3)

    def test_index_arrays(self, small_grid):
        assert small_grid.machine_rd.tolist() == [0, 0, 1]
        assert small_grid.client_cd.tolist() == [0, 1]
        assert small_grid.rd_required.tolist() == [2, 4]  # B, D
        assert small_grid.cd_required.tolist() == [3, 1]  # C, A

    def test_build_requires_both_domain_kinds(self):
        builder = GridBuilder(ActivityCatalog.default(2))
        gd = builder.grid_domain("x")
        builder.resource_domain(gd, required_level="A")
        with pytest.raises(ConfigurationError):
            builder.build()

    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigurationError):
            GridBuilder(ActivityCatalog([]))

    def test_grid_needs_machines_and_clients(self):
        builder = GridBuilder(ActivityCatalog.default(2))
        gd = builder.grid_domain("x")
        builder.resource_domain(gd, required_level="A")
        builder.client_domain(gd, required_level="A")
        with pytest.raises(ConfigurationError, match="machine"):
            builder.build()

    def test_custom_ets_passed_to_table(self):
        builder = GridBuilder(ActivityCatalog.default(1))
        gd = builder.grid_domain("x")
        rd = builder.resource_domain(gd, required_level="A")
        cd = builder.client_domain(gd, required_level="A")
        builder.machine(rd)
        builder.client(cd)
        grid = builder.build(ets=EtsTable(f_forces_max=False))
        assert grid.trust_table.ets.f_forces_max is False

    def test_rd_defaults_to_full_catalog(self):
        catalog = ActivityCatalog.default(3)
        builder = GridBuilder(catalog)
        gd = builder.grid_domain("x")
        rd = builder.resource_domain(gd, required_level="A")
        assert rd.supported_activities == frozenset(catalog)


class TestGridQueries:
    def test_required_per_rd_is_pairwise_max(self, small_grid):
        # cd0 requires C(3); RDs require B(2) and D(4).
        assert small_grid.required_per_rd(0).tolist() == [3, 4]
        # cd1 requires A(1).
        assert small_grid.required_per_rd(1).tolist() == [2, 4]

    def test_required_per_rd_bounds(self, small_grid):
        with pytest.raises(ConfigurationError):
            small_grid.required_per_rd(2)

    def test_trust_cost_per_machine_expands_rds(self, small_grid):
        # Set OTLs: cd0 x rd0 -> E, cd0 x rd1 -> A for activity 0.
        small_grid.trust_table.set(0, 0, 0, "E")
        small_grid.trust_table.set(0, 1, 0, "A")
        costs = small_grid.trust_cost_per_machine(0, [0])
        # machines 0,1 in rd0: RTL=C(3) vs OTL E(5) -> 0; machine 2 in rd1:
        # RTL=D(4) vs OTL A(1) -> 3.
        assert costs.tolist() == [0, 0, 3]

    def test_machine_rd_mapping_consistent(self, small_grid):
        for m in small_grid.machines:
            assert small_grid.machine_rd[m.index] == m.resource_domain.index


class TestTrustCostMemoRetention:
    """Publishes to one CD must not evict the other CDs' priced rows."""

    def test_foreign_cd_publish_keeps_rows_cached(self, small_grid):
        acts = [0]
        row0 = small_grid.trust_cost_per_machine(0, acts)
        small_grid.trust_cost_per_machine(1, acts)
        assert len(small_grid._tc_memo) == 2
        cached_entry = small_grid._tc_memo[("row", 0, (0,))]
        small_grid.trust_table.set(1, 0, 0, "E")  # CD 1 only
        row0_after = small_grid.trust_cost_per_machine(0, acts)
        assert small_grid._tc_memo[("row", 0, (0,))] is cached_entry
        assert np.array_equal(row0, row0_after)

    def test_own_cd_publish_reprices_exactly(self, small_grid):
        acts = [0]
        before = small_grid.trust_cost_per_machine(0, acts)
        small_grid.trust_table.set(0, 0, 0, "E")
        after = small_grid.trust_cost_per_machine(0, acts)
        assert not np.array_equal(before, after)
        # The repriced row matches a memo-free recompute.
        fresh = small_grid.trust_table.trust_cost_row(
            0, acts, small_grid.required_per_rd(0)
        )[small_grid.machine_rd]
        assert np.array_equal(after, fresh)

    def test_matrix_rows_survive_foreign_publishes(self, small_grid):
        cds = np.array([0, 0])
        masks = np.zeros((2, 3), dtype=bool)
        masks[:, 0] = True
        before = small_grid.trust_cost_matrix(cds, masks)
        keys = [k for k in small_grid._tc_memo if k[0] == "matrix"]
        assert len(keys) == 1
        entry = small_grid._tc_memo[keys[0]]
        small_grid.trust_table.set(1, 0, 0, "E")  # CD 1: not in the key's set
        after = small_grid.trust_cost_matrix(cds, masks)
        assert small_grid._tc_memo[keys[0]] is entry
        assert np.array_equal(before, after)
        small_grid.trust_table.set(0, 0, 0, "E")  # CD 0: must reprice
        repriced = small_grid.trust_cost_matrix(cds, masks)
        assert small_grid._tc_memo[keys[0]] is not entry
        scalar_rows = np.stack(
            [small_grid.trust_cost_per_machine(int(c), [0]) for c in cds]
        )
        assert np.array_equal(repriced, scalar_rows)
