"""Tests for repro.grid.request."""

import pytest

from repro.core.levels import TrustLevel
from repro.grid.activities import ActivityCatalog, ActivitySet
from repro.grid.client import Client
from repro.grid.domain import ClientDomain, GridDomain
from repro.grid.request import MetaRequest, Request, Task


@pytest.fixture
def client() -> Client:
    cd = ClientDomain(index=2, grid_domain=GridDomain(0, "org"), required_level=TrustLevel.B)
    return Client(index=0, client_domain=cd)


@pytest.fixture
def catalog() -> ActivityCatalog:
    return ActivityCatalog.default(4)


def make_request(client, catalog, index=0, arrival=1.0) -> Request:
    task = Task(index=index, activities=ActivitySet.of(catalog.by_index(0)))
    return Request(index=index, client=client, task=task, arrival_time=arrival)


class TestRequest:
    def test_client_domain_index(self, client, catalog):
        req = make_request(client, catalog)
        assert req.client_domain_index == 2

    def test_negative_arrival_rejected(self, client, catalog):
        with pytest.raises(ValueError):
            make_request(client, catalog, arrival=-1.0)

    def test_task_index_validation(self, catalog):
        with pytest.raises(ValueError):
            Task(index=-1, activities=ActivitySet.of(catalog.by_index(0)))


class TestMetaRequest:
    def test_of_sorts_by_arrival(self, client, catalog):
        reqs = [
            make_request(client, catalog, index=0, arrival=5.0),
            make_request(client, catalog, index=1, arrival=2.0),
        ]
        meta = MetaRequest.of(reqs, formed_at=10.0)
        assert [r.index for r in meta] == [1, 0]
        assert len(meta) == 2
        assert not meta.is_empty

    def test_late_arrival_rejected(self, client, catalog):
        late = make_request(client, catalog, arrival=11.0)
        with pytest.raises(ValueError, match="after the batch"):
            MetaRequest.of([late], formed_at=10.0)

    def test_arrival_exactly_at_boundary_allowed(self, client, catalog):
        boundary = make_request(client, catalog, arrival=10.0)
        meta = MetaRequest.of([boundary], formed_at=10.0)
        assert len(meta) == 1

    def test_empty_batch(self):
        meta = MetaRequest.of([], formed_at=5.0)
        assert meta.is_empty
        assert len(meta) == 0

    def test_tie_broken_by_index(self, client, catalog):
        reqs = [
            make_request(client, catalog, index=3, arrival=1.0),
            make_request(client, catalog, index=1, arrival=1.0),
        ]
        meta = MetaRequest.of(reqs, formed_at=2.0)
        assert [r.index for r in meta] == [1, 3]
