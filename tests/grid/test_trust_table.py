"""Tests for repro.grid.trust_table."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ets import EtsTable
from repro.core.levels import TrustLevel
from repro.grid.trust_table import GridTrustTable


@pytest.fixture
def table() -> GridTrustTable:
    return GridTrustTable(2, 3, 4)


class TestConstruction:
    def test_initial_level_uniform(self, table):
        assert table.get(0, 0, 0) is TrustLevel.A
        assert table.shape == (2, 3, 4)

    def test_initial_level_configurable(self):
        t = GridTrustTable(1, 1, 1, initial_level="C")
        assert t.get(0, 0, 0) is TrustLevel.C

    def test_f_initial_rejected(self):
        with pytest.raises(ValueError):
            GridTrustTable(1, 1, 1, initial_level="F")

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            GridTrustTable(0, 1, 1)

    def test_custom_ets_flows_through(self):
        t = GridTrustTable(1, 1, 1, ets=EtsTable(f_forces_max=False))
        t.set(0, 0, 0, "E")
        assert t.trust_cost(0, 0, [0], "F") == 1
        assert t.ets.f_forces_max is False


class TestSetGet:
    def test_set_and_get(self, table):
        table.set(1, 2, 3, "D")
        assert table.get(1, 2, 3) is TrustLevel.D

    def test_set_f_rejected(self, table):
        with pytest.raises(ValueError):
            table.set(0, 0, 0, TrustLevel.F)

    def test_levels_view_is_read_only(self, table):
        with pytest.raises(ValueError):
            table.levels[0, 0, 0] = 3

    def test_fill_from_validates_shape(self, table):
        with pytest.raises(ValueError, match="shape"):
            table.fill_from(np.ones((2, 3, 5), dtype=np.int64))

    def test_fill_from_validates_range(self, table):
        bad = np.full((2, 3, 4), 6, dtype=np.int64)
        with pytest.raises(ValueError, match=r"\[A, E\]"):
            table.fill_from(bad)

    def test_fill_from(self, table):
        values = np.full((2, 3, 4), 3, dtype=np.int64)
        values[1, 2, 0] = 5
        table.fill_from(values)
        assert table.get(1, 2, 0) is TrustLevel.E
        assert table.get(0, 0, 0) is TrustLevel.C


class TestTrustQueries:
    def test_offered_level_is_minimum_over_activities(self, table):
        table.set(0, 1, 0, "E")
        table.set(0, 1, 1, "B")
        table.set(0, 1, 2, "D")
        assert table.offered_level(0, 1, [0, 1, 2]) is TrustLevel.B
        assert table.offered_level(0, 1, [0, 2]) is TrustLevel.D

    def test_offered_row_spans_rds(self, table):
        table.set(0, 0, 0, "C")
        table.set(0, 1, 0, "E")
        table.set(0, 2, 0, "A")
        row = table.offered_row(0, [0])
        assert row.tolist() == [3, 5, 1]

    def test_trust_cost_uses_ets(self, table):
        table.set(0, 0, 0, "B")
        assert table.trust_cost(0, 0, [0], "E") == 3
        assert table.trust_cost(0, 0, [0], "A") == 0
        assert table.trust_cost(0, 0, [0], "F") == 6  # default F override

    def test_trust_cost_row_vectorised(self, table):
        for rd, level in enumerate(["B", "D", "E"]):
            table.set(0, rd, 0, level)
        required = np.array([4, 4, 4])  # RTL = D for every RD
        costs = table.trust_cost_row(0, [0], required)
        assert costs.tolist() == [2, 0, 0]

    def test_trust_cost_row_shape_mismatch(self, table):
        with pytest.raises(ValueError):
            table.trust_cost_row(0, [0], np.array([1, 2]))

    def test_empty_activity_set_rejected(self, table):
        with pytest.raises(ValueError):
            table.offered_level(0, 0, [])

    def test_activity_index_out_of_range(self, table):
        with pytest.raises(ValueError):
            table.offered_level(0, 0, [4])

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=4, unique=True))
    def test_composed_never_exceeds_atomic(self, activities):
        """Adding activities can only lower (or keep) the OTL."""
        rng = np.random.default_rng(0)
        table = GridTrustTable(1, 1, 4)
        table.fill_from(rng.integers(1, 6, size=(1, 1, 4)))
        composite = int(table.offered_level(0, 0, activities))
        atomics = [int(table.offered_level(0, 0, [a])) for a in activities]
        assert composite == min(atomics)


class TestVectorisedEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    def test_trust_cost_row_matches_scalar_lookup(self, seed):
        """Property: the vectorised TC row equals per-RD scalar queries."""
        rng = np.random.default_rng(seed)
        n_cd, n_rd, n_act = 2, 4, 3
        table = GridTrustTable(n_cd, n_rd, n_act)
        table.fill_from(rng.integers(1, 6, size=(n_cd, n_rd, n_act)))
        activities = list(
            rng.choice(n_act, size=int(rng.integers(1, n_act + 1)), replace=False)
        )
        required = rng.integers(1, 7, size=n_rd)
        row = table.trust_cost_row(0, activities, required)
        for rd in range(n_rd):
            assert row[rd] == table.trust_cost(0, rd, activities, int(required[rd]))


class TestPerCdEpochs:
    def test_set_bumps_only_its_cd(self):
        table = GridTrustTable(3, 2, 2)
        assert [table.cd_epoch(cd) for cd in range(3)] == [0, 0, 0]
        table.set(1, 0, 0, "C")
        assert [table.cd_epoch(cd) for cd in range(3)] == [0, 1, 0]
        table.set(1, 1, 1, "D")
        assert table.cd_epoch(1) == 2 and table.cd_epoch(0) == 0
        assert table.epoch == 2

    def test_fill_from_bumps_every_cd(self):
        table = GridTrustTable(3, 2, 2)
        table.fill_from(np.full((3, 2, 2), 3, dtype=np.int64))
        assert [table.cd_epoch(cd) for cd in range(3)] == [1, 1, 1]
        assert table.epoch == 1
