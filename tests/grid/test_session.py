"""Tests for the closed-loop GridSession."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grid.agents import AgentFleet
from repro.grid.behavior import (
    BehaviorModel,
    DegradingBehavior,
    FlipBehavior,
    StationaryBehavior,
)
from repro.grid.session import GridSession
from repro.scheduling.policy import TrustPolicy
from repro.workloads.scenario import ScenarioSpec, materialize


def make_grid(seed=5):
    return materialize(ScenarioSpec(cd_range=(2, 2), rd_range=(3, 3)), seed=seed).grid


def make_session(grid=None, behavior=None, **kwargs) -> GridSession:
    grid = grid if grid is not None else make_grid()
    behavior = behavior if behavior is not None else BehaviorModel.uniform(0.85)
    defaults = dict(
        grid=grid,
        behavior=behavior,
        policy=TrustPolicy.aware(unaware_fraction=0.9),
        seed=3,
    )
    defaults.update(kwargs)
    return GridSession(**defaults)


class TestConfiguration:
    def test_batch_heuristic_needs_interval(self):
        with pytest.raises(ConfigurationError, match="batch"):
            make_session(heuristic="min-min")

    def test_batch_heuristic_with_interval_ok(self):
        session = make_session(heuristic="min-min", batch_interval=200.0)
        result = session.run_round(10)
        assert len(result.schedule) == 10

    def test_foreign_fleet_rejected(self):
        grid_a, grid_b = make_grid(1), make_grid(2)
        fleet_b = AgentFleet.for_table(grid_b.trust_table)
        with pytest.raises(ConfigurationError, match="fleet"):
            make_session(grid=grid_a, fleet=fleet_b)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            make_session(arrival_rate=0.0)

    def test_invalid_round_sizes(self):
        session = make_session()
        with pytest.raises(ConfigurationError):
            session.run_round(0)
        with pytest.raises(ConfigurationError):
            session.run(rounds=0, requests_per_round=5)


class TestRounds:
    def test_clock_advances_across_rounds(self):
        session = make_session()
        r0 = session.run_round(10)
        t0 = session.now
        assert t0 >= r0.schedule.makespan
        session.run_round(10)
        assert session.now > t0

    def test_completions_feed_agents(self):
        session = make_session()
        result = session.run(rounds=2, requests_per_round=15)
        assert result.total_published > 0
        assert len(result) == 2
        # Internal evidence accumulated in the shared table.
        assert len(session.fleet.internal_table) > 0

    def test_good_behavior_raises_published_levels(self):
        grid = make_grid()
        session = make_session(grid=grid, behavior=BehaviorModel.uniform(0.95))
        before = grid.trust_table.levels.mean()
        session.run(rounds=3, requests_per_round=20)
        assert grid.trust_table.levels.mean() > before

    def test_degrading_domain_loses_trust(self):
        grid = make_grid()
        behavior = BehaviorModel(
            profiles={
                0: StationaryBehavior(0.9),
                1: StationaryBehavior(0.9),
                2: DegradingBehavior(start=0.9, floor=0.05, horizon=2000.0),
            }
        )
        session = make_session(grid=grid, behavior=behavior)
        result = session.run(rounds=6, requests_per_round=30)
        final = result.rounds[-1].table_levels
        # RD 2's published levels end below the healthy domains'.
        assert final[:, 2, :].mean() < final[:, 0, :].mean()

    def test_betrayal_detected(self):
        """A domain that flips from good to bad is demoted."""
        grid = make_grid()
        behavior = BehaviorModel(
            profiles={1: FlipBehavior(before=0.95, after=0.05, flip_time=1500.0)},
            default=StationaryBehavior(0.85),
        )
        session = make_session(grid=grid, behavior=behavior)
        result = session.run(rounds=8, requests_per_round=25)
        early = result.rounds[1].table_levels[:, 1, :].mean()
        late = result.rounds[-1].table_levels[:, 1, :].mean()
        assert late < early

    def test_score_clients_updates_both_sides(self):
        grid = make_grid()
        session = make_session(grid=grid, score_clients=True)
        session.run_round(20)
        trusters = {t for (t, _, _) in session.fleet.internal_table}
        assert any(str(t).startswith("cd:") for t in trusters)
        assert any(str(t).startswith("rd:") for t in trusters)

    def test_series_properties(self):
        session = make_session()
        result = session.run(rounds=3, requests_per_round=10)
        assert len(result.completion_series) == 3
        assert len(result.flow_series) == 3
        assert len(result.trust_cost_series) == 3
        assert all(np.isfinite(result.flow_series))

    def test_determinism(self):
        a = make_session(grid=make_grid(9), seed=11).run(2, 12)
        b = make_session(grid=make_grid(9), seed=11).run(2, 12)
        assert a.completion_series == b.completion_series
        assert a.trust_cost_series == b.trust_cost_series


class TestConstrainedSession:
    def test_session_with_reject_constraint(self):
        """A cold-start session with strict admission control: early rounds
        reject requests; as the table is learned, admission recovers."""
        from repro.scheduling.constraints import InfeasiblePolicy, TrustConstraint

        grid = make_grid(13)
        # Cold table: everyone offers A, so TC is high for demanding CDs.
        grid.trust_table.fill_from(
            np.ones(grid.trust_table.shape, dtype=np.int64)
        )
        session = make_session(
            grid=grid,
            behavior=BehaviorModel.uniform(0.95),
            constraint=TrustConstraint(
                max_trust_cost=2, infeasible=InfeasiblePolicy.REJECT
            ),
        )
        result = session.run(rounds=4, requests_per_round=25)
        first = result.rounds[0].schedule
        last = result.rounds[-1].schedule
        # Admitted requests always honour the bound.
        for round_result in result.rounds:
            for rec in round_result.schedule.records:
                assert rec.trust_cost <= 2
        # Learning good behaviour improves admission over the session.
        assert last.rejection_rate <= first.rejection_rate


class TestTrustKernelInstrumentation:
    def test_gamma_fleet_feeds_trust_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        grid = make_grid()
        fleet = AgentFleet.for_table(grid.trust_table, gamma_weights=(0.7, 0.3))
        metrics = MetricsRegistry(enabled=True)
        session = make_session(grid=grid, fleet=fleet, metrics=metrics)
        session.run(rounds=2, requests_per_round=8)
        # The Γ engines are bound to the session registry, so every agent
        # evaluation lands in the scalar-kernel latency histogram.
        assert metrics.histogram("trust.gamma_latency_s.kernel=scalar").count > 0

    def test_disabled_metrics_stay_silent(self):
        grid = make_grid()
        fleet = AgentFleet.for_table(grid.trust_table, gamma_weights=(0.7, 0.3))
        session = make_session(grid=grid, fleet=fleet)
        session.run(rounds=1, requests_per_round=8)
        assert session.metrics.snapshot() == {}


class TestTrustSnapshot:
    """Session-level zero-copy trust persistence and restart seeding."""

    def test_snapshot_and_reseed_resumes_with_knowledge(self, tmp_path):
        from repro.core.store import restore_trust_store
        from repro.grid.trust_table import GridTrustTable

        session = make_session()
        session.run_round(30)
        session.run_round(30)
        internal = session.fleet.internal_table
        assert list(internal.items()), "rounds should populate the DTT/RTT"

        manifest = session.snapshot_trust(tmp_path)
        assert manifest.is_file()
        restored = restore_trust_store(tmp_path)
        assert dict(restored.table.items()) == dict(internal.items())

        # A restarted fleet seeded with the restored table resumes with
        # the accumulated trust knowledge instead of a blank slate.
        shape = session.grid.trust_table.shape
        fleet = AgentFleet.for_table(
            GridTrustTable(*shape), internal_table=restored.table
        )
        assert fleet.internal_table is restored.table
        assert dict(fleet.internal_table.items()) == dict(internal.items())

    def test_gamma_fleet_snapshot_keeps_weights(self, tmp_path):
        from repro.core.store import restore_trust_store
        from repro.grid.trust_table import GridTrustTable

        grid = make_grid()
        fleet = AgentFleet.for_table(
            grid.trust_table, gamma_weights=(0.7, 0.3)
        )
        session = make_session(grid=grid, fleet=fleet)
        session.run_round(25)
        manifest = session.snapshot_trust(tmp_path)
        restored = restore_trust_store(tmp_path)
        assert restored.weights is not None
