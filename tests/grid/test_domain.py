"""Tests for repro.grid.domain, machine and client objects."""

import pytest

from repro.core.levels import TrustLevel
from repro.grid.activities import ActivityType
from repro.grid.client import Client
from repro.grid.domain import ClientDomain, GridDomain, ResourceDomain
from repro.grid.machine import Machine, MachineState


def make_rd(index=0, level=TrustLevel.B) -> ResourceDomain:
    gd = GridDomain(index=0, name="site")
    return ResourceDomain(
        index=index,
        grid_domain=gd,
        supported_activities=frozenset({ActivityType(0, "execute")}),
        required_level=level,
    )


class TestDomains:
    def test_grid_domain_validation(self):
        with pytest.raises(ValueError):
            GridDomain(index=-1, name="x")
        with pytest.raises(ValueError):
            GridDomain(index=0, name="")

    def test_resource_domain_supports(self):
        rd = make_rd()
        act = next(iter(rd.supported_activities))
        assert rd.supports(act)
        assert not rd.supports(ActivityType(5, "other"))

    def test_resource_domain_needs_activities(self):
        gd = GridDomain(index=0, name="site")
        with pytest.raises(ValueError):
            ResourceDomain(
                index=0,
                grid_domain=gd,
                supported_activities=frozenset(),
                required_level=TrustLevel.A,
            )

    def test_names_derive_from_grid_domain(self):
        rd = make_rd(index=2)
        assert rd.name == "site/rd2"
        cd = ClientDomain(index=1, grid_domain=GridDomain(0, "org"), required_level=TrustLevel.A)
        assert cd.name == "org/cd1"


class TestMachine:
    def test_default_name(self):
        m = Machine(index=3, resource_domain=make_rd())
        assert m.name == "site/rd0/m3"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Machine(index=-1, resource_domain=make_rd())


class TestMachineState:
    def test_assign_from_idle(self):
        state = MachineState(machine=Machine(0, make_rd()))
        completion = state.assign(start=10.0, cost=5.0)
        assert completion == 15.0
        assert state.available_time == 15.0
        assert state.busy_time == 5.0
        assert state.assigned_count == 1

    def test_assign_queues_behind_existing_work(self):
        state = MachineState(machine=Machine(0, make_rd()))
        state.assign(start=0.0, cost=10.0)
        completion = state.assign(start=2.0, cost=3.0)  # must wait until t=10
        assert completion == 13.0
        assert state.busy_time == 13.0

    def test_idle_gap_not_counted_busy(self):
        state = MachineState(machine=Machine(0, make_rd()))
        state.assign(start=100.0, cost=1.0)
        assert state.busy_time == 1.0
        assert state.available_time == 101.0

    def test_negative_cost_rejected(self):
        state = MachineState(machine=Machine(0, make_rd()))
        with pytest.raises(ValueError):
            state.assign(start=0.0, cost=-1.0)

    def test_utilization(self):
        state = MachineState(machine=Machine(0, make_rd()))
        state.assign(start=0.0, cost=5.0)
        assert state.utilization(horizon=10.0) == pytest.approx(0.5)
        assert state.utilization(horizon=0.0) == 0.0
        # Capped at 1 even if horizon shorter than busy time.
        assert state.utilization(horizon=2.0) == 1.0


class TestClient:
    def test_default_name(self):
        cd = ClientDomain(index=0, grid_domain=GridDomain(0, "org"), required_level=TrustLevel.A)
        c = Client(index=4, client_domain=cd)
        assert c.name == "org/cd0/c4"
        assert str(c) == c.name
