"""Tests for repro.grid.agents (Figure-1 monitoring agents)."""

import pytest

from repro.core.evolution import TrustEvolver
from repro.core.levels import TrustLevel
from repro.core.tables import TrustTable
from repro.core.update import MinEvidencePolicy
from repro.grid.activities import ActivityCatalog
from repro.grid.agents import AgentFleet, AgentSide, DomainTrustAgent
from repro.grid.trust_table import GridTrustTable


@pytest.fixture
def grid_table() -> GridTrustTable:
    return GridTrustTable(2, 2, 2, initial_level="C")


@pytest.fixture
def catalog() -> ActivityCatalog:
    return ActivityCatalog.default(2)


def make_agent(grid_table, side=AgentSide.CLIENT_DOMAIN, index=0, policy=None):
    kwargs = {"policy": policy} if policy is not None else {}
    return DomainTrustAgent(
        side=side,
        domain_index=index,
        grid_table=grid_table,
        evolver=TrustEvolver(table=TrustTable(), smoothing=1.0),
        **kwargs,
    )


class TestDomainTrustAgent:
    def test_good_outcome_publishes_high_level(self, grid_table, catalog):
        agent = make_agent(grid_table)
        published = agent.observe_transaction(1, catalog.by_index(0), 0.95, time=1.0)
        # value 0.95 quantises to F, clamped to the offerable E.
        assert published is TrustLevel.E
        assert grid_table.get(0, 1, 0) is TrustLevel.E
        assert agent.published_count == 1

    def test_bad_outcome_publishes_low_level(self, grid_table, catalog):
        agent = make_agent(grid_table)
        published = agent.observe_transaction(0, catalog.by_index(1), 0.05, time=1.0)
        assert published is TrustLevel.A
        assert grid_table.get(0, 0, 1) is TrustLevel.A

    def test_no_update_when_level_unchanged(self, grid_table, catalog):
        agent = make_agent(grid_table)
        # value 0.45 -> level C == initial C: no publication.
        assert agent.observe_transaction(0, catalog.by_index(0), 0.45, time=1.0) is None
        assert agent.published_count == 0

    def test_rd_agent_indexes_table_transposed(self, grid_table, catalog):
        agent = make_agent(grid_table, side=AgentSide.RESOURCE_DOMAIN, index=1)
        agent.observe_transaction(0, catalog.by_index(0), 0.95, time=1.0)
        # counterpart 0 is the CD; table coordinates are (cd=0, rd=1).
        assert grid_table.get(0, 1, 0) is TrustLevel.E
        assert grid_table.get(1, 0, 0) is TrustLevel.C  # untouched

    def test_policy_gates_publication(self, grid_table, catalog):
        agent = make_agent(grid_table, policy=MinEvidencePolicy(min_transactions=3))
        act = catalog.by_index(0)
        assert agent.observe_transaction(1, act, 0.95, time=1.0) is None
        assert agent.observe_transaction(1, act, 0.95, time=2.0) is None
        assert agent.observe_transaction(1, act, 0.95, time=3.0) is TrustLevel.E

    def test_entity_ids_distinct_per_side(self, grid_table):
        cd_agent = make_agent(grid_table, side=AgentSide.CLIENT_DOMAIN, index=1)
        rd_agent = make_agent(grid_table, side=AgentSide.RESOURCE_DOMAIN, index=1)
        assert cd_agent.entity_id != rd_agent.entity_id


class TestAgentFleet:
    def test_fleet_covers_all_domains(self, grid_table):
        fleet = AgentFleet.for_table(grid_table)
        assert len(fleet.cd_agents) == 2
        assert len(fleet.rd_agents) == 2

    def test_fleet_shares_internal_table(self, grid_table):
        fleet = AgentFleet.for_table(grid_table)
        tables = {id(a.evolver.table) for a in fleet.cd_agents + fleet.rd_agents}
        assert tables == {id(fleet.internal_table)}

    def test_total_published(self, grid_table, catalog):
        fleet = AgentFleet.for_table(grid_table)
        fleet.cd_agents[0].observe_transaction(0, catalog.by_index(0), 0.95, 1.0)
        fleet.rd_agents[1].observe_transaction(1, catalog.by_index(1), 0.05, 1.0)
        assert fleet.total_published() == 2

    def test_gamma_weights_blend_reputation_into_publication(self, grid_table, catalog):
        """With Γ publication, another agent's bad opinion drags down the
        level a fresh agent publishes about the same trustee."""
        fleet = AgentFleet.for_table(
            grid_table, gamma_weights=(0.5, 0.5), smoothing=1.0
        )
        act = catalog.by_index(0)
        # cd0 has a terrible direct experience with rd1 (recorded but the
        # publication sets (0,1); we care about its effect on cd1's view).
        fleet.cd_agents[0].observe_transaction(1, act, 0.0, time=1.0)
        # cd1 has a perfect experience with rd1.  Direct Θ = 1.0, but the
        # reputation Ω (cd0's record) is 0.0, so Γ = 0.5 -> level D.
        published = fleet.cd_agents[1].observe_transaction(1, act, 1.0, time=2.0)
        assert published is TrustLevel.D

    def test_gamma_weights_pure_direct_matches_default(self, grid_table, catalog):
        fleet = AgentFleet.for_table(
            grid_table, gamma_weights=(1.0, 0.0), smoothing=1.0
        )
        act = catalog.by_index(0)
        published = fleet.cd_agents[0].observe_transaction(1, act, 0.95, time=1.0)
        assert published is TrustLevel.E

    def test_both_sides_feed_shared_reputation(self, grid_table, catalog):
        """A CD agent's observations become reputation data an RD agent's
        engine could consult — the single-table design of the paper."""
        fleet = AgentFleet.for_table(grid_table)
        fleet.cd_agents[0].observe_transaction(1, catalog.by_index(0), 0.9, 1.0)
        recs = list(
            fleet.internal_table.recommenders(
                "rd:1", catalog.by_index(0).context, excluding="cd:9"
            )
        )
        assert len(recs) == 1
        assert recs[0][0] == "cd:0"
