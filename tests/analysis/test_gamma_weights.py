"""Tests for the (alpha, beta) gamma-weight ablation."""

import pytest

from repro.analysis.gamma_weights import ablate_gamma_weights
from repro.errors import ConfigurationError


class TestGammaWeightAblation:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return ablate_gamma_weights(alphas=(1.0, 0.7), rounds=4, requests_per_round=25)

    def test_one_outcome_per_alpha(self, outcomes):
        assert [o.alpha for o in outcomes] == [1.0, 0.7]
        assert all(o.beta == pytest.approx(1.0 - o.alpha) for o in outcomes)

    def test_table_learns_under_all_weights(self, outcomes):
        # Cold table has error ~2.2 against the chosen truth; learning
        # must cut it substantially for every weighting.
        for o in outcomes:
            assert o.mean_level_error < 1.5
            assert o.published_updates > 0

    def test_blending_reputation_helps_sparse_evidence(self, outcomes):
        pure_direct = next(o for o in outcomes if o.alpha == 1.0)
        blended = next(o for o in outcomes if o.alpha == 0.7)
        # Pooling the fleet's evidence should not hurt accuracy (and
        # typically helps); allow a small noise margin at this scale.
        assert blended.mean_level_error <= pure_direct.mean_level_error + 0.15

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ablate_gamma_weights(alphas=())
        with pytest.raises(ConfigurationError):
            ablate_gamma_weights(alphas=(1.5,), rounds=1)

    def test_deterministic(self):
        a = ablate_gamma_weights(alphas=(0.5,), rounds=2, requests_per_round=10)
        b = ablate_gamma_weights(alphas=(0.5,), rounds=2, requests_per_round=10)
        assert a[0].mean_level_error == b[0].mean_level_error
