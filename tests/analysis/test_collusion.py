"""Tests for the collusion-resistance study."""

import pytest

from repro.analysis.collusion import CollusionOutcome, run_collusion_study
from repro.errors import ConfigurationError


class TestCollusionStudy:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_collusion_study(seed=0)

    def test_clique_inflates_reputation_without_r(self, outcome):
        """Without R the collusive lies inflate the clique's reputation."""
        assert outcome.inflation_undefended > 0.10

    def test_r_removes_most_of_the_inflation(self, outcome):
        assert outcome.defense_effectiveness > 0.7
        assert abs(outcome.inflation_defended) < abs(outcome.inflation_undefended)

    def test_honest_entities_not_harmed(self, outcome):
        """R must not destroy honest entities' reputations."""
        assert outcome.honest_estimate_defended > outcome.honest_truth - 0.15

    def test_alliance_discount_alone_helps(self):
        with_learning = run_collusion_study(seed=1, learn_accuracy=True)
        without_learning = run_collusion_study(seed=1, learn_accuracy=False)
        for o in (with_learning, without_learning):
            assert o.defense_effectiveness > 0.3
        # Learning accuracy strengthens the defence further.
        assert (
            with_learning.clique_estimate_defended
            <= without_learning.clique_estimate_defended + 0.05
        )

    def test_bigger_cliques_inflate_more(self):
        small = run_collusion_study(seed=2, n_clique=2)
        large = run_collusion_study(seed=2, n_clique=6)
        assert large.inflation_undefended > small.inflation_undefended

    def test_deterministic(self):
        a = run_collusion_study(seed=5)
        b = run_collusion_study(seed=5)
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_honest": 1},
            {"n_clique": 1},
            {"honest_truth": 1.5},
            {"clique_truth": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            run_collusion_study(**kwargs)

    def test_effectiveness_bounds(self):
        o = CollusionOutcome(
            clique_truth=0.3,
            clique_estimate_defended=0.3,
            clique_estimate_undefended=0.2,  # no inflation at all
            honest_estimate_defended=0.8,
            honest_truth=0.85,
        )
        assert o.defense_effectiveness == 1.0
