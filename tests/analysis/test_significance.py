"""Tests for paired significance utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.significance import bootstrap_ci, paired_t_test


class TestPairedTTest:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(0)
        base = rng.normal(100, 5, size=30)
        treat = base - 20 + rng.normal(0, 2, size=30)
        result = paired_t_test(base, treat)
        assert result.mean_difference == pytest.approx(20, abs=3)
        assert result.degrees_of_freedom == 29
        assert result.p_value < 1e-6
        assert result.significant()

    def test_no_difference_is_not_significant(self):
        rng = np.random.default_rng(1)
        base = rng.normal(100, 5, size=30)
        treat = base + rng.normal(0, 5, size=30)  # zero-mean noise
        result = paired_t_test(base, treat)
        assert result.p_value > 0.01

    def test_identical_series(self):
        result = paired_t_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.t_statistic == 0.0
        assert result.p_value == 1.0
        assert not result.significant()

    def test_constant_nonzero_difference(self):
        result = paired_t_test([2.0, 3.0, 4.0], [1.0, 2.0, 3.0])
        assert result.p_value == 0.0
        assert result.mean_difference == 1.0

    def test_known_t_value(self):
        # diffs = [1, 2, 3]: mean 2, sd 1, n 3 -> t = 2/(1/sqrt(3)) = 3.464.
        result = paired_t_test([2.0, 4.0, 6.0], [1.0, 2.0, 3.0])
        assert result.t_statistic == pytest.approx(3.4641, rel=1e-3)
        # Two-sided p for t=3.464, df=2 is ~0.0742.
        assert result.p_value == pytest.approx(0.0742, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0])
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=3,
            max_size=30,
        )
    )
    def test_p_value_in_unit_interval(self, values):
        rng = np.random.default_rng(len(values))
        other = np.array(values) + rng.normal(0, 1, size=len(values))
        result = paired_t_test(values, other)
        assert 0.0 <= result.p_value <= 1.0

    def test_symmetry(self):
        a = [10.0, 12.0, 9.0, 15.0]
        b = [8.0, 11.0, 9.5, 12.0]
        ab = paired_t_test(a, b)
        ba = paired_t_test(b, a)
        assert ab.p_value == pytest.approx(ba.p_value)
        assert ab.t_statistic == pytest.approx(-ba.t_statistic)


class TestBootstrapCI:
    def test_ci_brackets_true_difference(self):
        rng = np.random.default_rng(2)
        base = rng.normal(100, 5, size=50)
        treat = base - 10 + rng.normal(0, 2, size=50)
        low, high = bootstrap_ci(base, treat, rng=np.random.default_rng(3))
        assert low < 10 < high
        assert low > 5  # clearly positive

    def test_ci_straddles_zero_for_null(self):
        rng = np.random.default_rng(4)
        base = rng.normal(100, 5, size=50)
        treat = base + rng.normal(0, 5, size=50)
        low, high = bootstrap_ci(base, treat, rng=np.random.default_rng(5))
        assert low < 0 < high

    def test_deterministic_given_rng(self):
        base, treat = [1.0, 2.0, 3.0, 4.0], [0.5, 1.0, 2.5, 3.0]
        a = bootstrap_ci(base, treat, rng=np.random.default_rng(7))
        b = bootstrap_ci(base, treat, rng=np.random.default_rng(7))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], [1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], [1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], [1.0, 2.0], n_resamples=10)


class TestCellIntegration:
    def test_cell_significance(self):
        from repro.experiments.runner import run_paired_cell
        from repro.scheduling.policy import TrustPolicy
        from repro.workloads.scenario import ScenarioSpec

        cell = run_paired_cell(
            ScenarioSpec(n_tasks=15, target_load=4.5),
            "mct",
            TrustPolicy.aware(unaware_fraction=0.9),
            TrustPolicy.unaware(unaware_fraction=0.9),
            replications=8,
        )
        assert len(cell.aware_samples) == 8
        test = cell.significance()
        assert test.mean_difference > 0  # unaware slower
        assert test.significant()
