"""Tests for sweeps and ablations."""

import pytest

from repro.analysis.ablation import (
    ablate_accounting,
    ablate_f_override,
    ablate_otl_granularity,
    ablate_tc_weight,
    ablate_unaware_fraction,
)
from repro.analysis.sweep import sweep_batch_interval, sweep_policy, sweep_scenario_field
from repro.scheduling.policy import SecurityAccounting

FAST = dict(replications=3)


class TestSweeps:
    def test_scenario_field_sweep(self):
        points = sweep_scenario_field(
            "n_machines", [3, 6], n_tasks=12, replications=3
        )
        assert [p.value for p in points] == [3, 6]
        assert all(p.cell.replications == 3 for p in points)

    def test_batch_interval_sweep(self):
        points = sweep_batch_interval([100.0, 800.0], n_tasks=12, replications=3)
        assert len(points) == 2
        assert points[0].cell.heuristic == "min-min"

    def test_policy_sweep_one_knob_at_a_time(self):
        with pytest.raises(ValueError):
            sweep_policy(tc_weights=(15.0,), unaware_fractions=(0.5,))
        with pytest.raises(ValueError):
            sweep_policy()

    def test_policy_sweep_fractions(self):
        points = sweep_policy(
            unaware_fractions=(0.5, 0.9), n_tasks=12, replications=3
        )
        # A costlier unaware baseline means a larger improvement.
        assert points[1].improvement > points[0].improvement


class TestAblations:
    def test_accounting_ablation_shows_flat_advantage(self):
        points = ablate_accounting(**FAST)
        by_mode = {p.value: p.improvement for p in points}
        assert (
            by_mode[SecurityAccounting.CONSERVATIVE_FLAT]
            > by_mode[SecurityAccounting.PAIR_REALIZED]
        )

    def test_unaware_fraction_monotone(self):
        points = ablate_unaware_fraction((0.5, 0.9), **FAST)
        assert points[1].improvement > points[0].improvement

    def test_tc_weight_ablation_runs(self):
        points = ablate_tc_weight((5.0, 25.0), **FAST)
        assert [p.value for p in points] == [5.0, 25.0]

    def test_otl_granularity_ablation(self):
        points = ablate_otl_granularity(**FAST)
        by_flag = {p.value: p.improvement for p in points}
        # Per-activity min-composition is harsher: smaller improvement.
        assert by_flag[True] >= by_flag[False]

    def test_f_override_ablation(self):
        points = ablate_f_override(**FAST)
        by_flag = {p.value: p.improvement for p in points}
        # The F-row override forces max supplements and shrinks improvement.
        assert by_flag[False] >= by_flag[True]
