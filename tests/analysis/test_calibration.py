"""Tests for the calibration analysis."""

import pytest

from repro.analysis.calibration import (
    aware_multiplier,
    improvement_cap,
    measure_chosen_tc,
    predicted_improvement,
    unaware_multiplier,
)
from repro.workloads.scenario import ScenarioSpec


class TestMultipliers:
    def test_aware_multiplier_paper_values(self):
        assert aware_multiplier(0.0) == 1.0
        assert aware_multiplier(3.0) == pytest.approx(1.45)
        assert aware_multiplier(6.0) == pytest.approx(1.90)

    def test_unaware_multiplier(self):
        assert unaware_multiplier(0.5) == 1.5
        assert unaware_multiplier(0.9) == pytest.approx(1.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            aware_multiplier(-1.0)
        with pytest.raises(ValueError):
            unaware_multiplier(-0.1)


class TestImprovementCap:
    def test_printed_50_percent_caps_at_a_third(self):
        """The DESIGN.md claim: the literal formula caps improvement at
        1 - 1/1.5 = 33%, attainable only with TC identically 0."""
        assert improvement_cap(0.5) == pytest.approx(1.0 / 3.0)

    def test_realistic_tc_lowers_the_cap(self):
        # With the measured mean chosen TC ~1.7 and the printed 50%:
        cap = improvement_cap(0.5, mean_chosen_tc=1.7)
        assert cap == pytest.approx(1 - 1.255 / 1.5, abs=1e-9)
        assert cap < 0.20  # nowhere near the paper's 35-40%

    def test_worst_case_blanket_reaches_paper_band(self):
        cap = improvement_cap(0.9, mean_chosen_tc=1.7)
        assert 0.30 <= cap <= 0.40  # consistent with Tables 4-5

    def test_alias(self):
        assert predicted_improvement is improvement_cap


class TestMeasuredChosenTc:
    def test_frozen_config_chosen_tc(self):
        report = measure_chosen_tc(replications=5)
        # Calibration finding recorded in EXPERIMENTS.md: ~1.6-1.8.
        assert 1.2 <= report.mean <= 2.2
        assert report.chosen.count == 5 * 50
        assert report.heuristic == "mct"

    def test_theory_matches_measured_table4(self):
        """The analytic cap with the measured TC predicts the measured
        Table-4 improvement to within a few points."""
        report = measure_chosen_tc(replications=5)
        predicted = improvement_cap(0.9, mean_chosen_tc=report.mean)
        assert predicted == pytest.approx(0.36, abs=0.06)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_chosen_tc(replications=0)

    def test_custom_spec(self):
        spec = ScenarioSpec(n_tasks=10, target_load=2.0)
        report = measure_chosen_tc(spec, replications=2)
        assert report.chosen.count == 20
