"""Tests for the makespan-dominance theorem verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theorem import (
    check_dominance,
    single_task_dominance_holds,
)


class TestSingleTaskBaseCase:
    """The provable n=1 case: aware never loses on the true objective."""

    def test_example(self):
        eec = np.array([10.0, 12.0])
        tc = np.array([6.0, 0.0])
        # Unaware picks machine 0 (EEC 10) and pays 19; aware picks 12.
        assert single_task_dominance_holds(eec, tc)

    @settings(max_examples=200)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_always_holds(self, eecs, seed):
        """Hypothesis: the base case holds for arbitrary cost rows."""
        rng = np.random.default_rng(seed)
        eec = np.array(eecs)
        tc = rng.integers(0, 7, size=eec.size).astype(float)
        assert single_task_dominance_holds(eec, tc)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            single_task_dominance_holds(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            single_task_dominance_holds(np.array([]), np.array([]))


class TestEmpiricalDominance:
    def test_mct_dominance_is_strong_tendency_under_flat_accounting(self):
        report = check_dominance("mct", trials=15, n_tasks=30)
        assert report.trials == 15
        # The greedy multi-task case is a tendency, not a theorem: allow a
        # small violation rate but require a clearly positive mean margin.
        assert report.violations <= 5
        assert report.mean_margin > 0.05

    def test_pair_realized_accounting_is_a_wash(self):
        """The reproduction finding: on the proof's own cost surface the
        multi-task dominance claim does NOT hold uniformly."""
        from repro.scheduling.policy import SecurityAccounting

        report = check_dominance(
            "mct",
            trials=15,
            n_tasks=30,
            accounting=SecurityAccounting.PAIR_REALIZED,
        )
        assert abs(report.mean_margin) < 0.10  # neither side wins decisively

    def test_batch_heuristic_supported(self):
        report = check_dominance("min-min", trials=5, n_tasks=15)
        assert len(report.margins) == 5

    def test_report_holds_flag(self):
        report = check_dominance("mct", trials=3, n_tasks=10, base_seed=100)
        assert report.holds == (report.violations == 0)
