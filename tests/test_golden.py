"""Golden-file regression tests.

Freeze the rendered outputs of the deterministic reproductions (Table 1,
the transfer tables, the SFI table, one small scheduling run) against
committed reference files, so any unintended behaviour change — a formula
tweak, an RNG-stream reshuffle, a renderer edit — trips a diff that must be
consciously re-frozen.

To re-freeze after an *intentional* change::

    python -m pytest tests/test_golden.py --force-regen  # not provided;
    # instead delete tests/golden/<name>.txt and re-run the suite once.
"""

from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"


def check_golden(name: str, actual: str) -> None:
    """Compare ``actual`` against the frozen file (creating it if absent)."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    path = GOLDEN_DIR / f"{name}.txt"
    if not path.exists():
        path.write_text(actual, encoding="utf-8")
        pytest.skip(f"golden file {path.name} created; re-run to verify")
    expected = path.read_text(encoding="utf-8")
    assert actual == expected, (
        f"output of {name!r} changed; if intentional, delete {path} and re-run"
    )


class TestGoldenOutputs:
    def test_table1_rendering(self):
        from repro.experiments.tables import reproduce_table1

        check_golden("table1", reproduce_table1().rendering)

    def test_table2_rendering(self):
        from repro.experiments.tables import reproduce_table2

        check_golden("table2", reproduce_table2().rendering)

    def test_table3_rendering(self):
        from repro.experiments.tables import reproduce_table3

        check_golden("table3", reproduce_table3().rendering)

    def test_sfi_rendering(self):
        from repro.experiments.tables import reproduce_sfi_overheads

        check_golden("sfi", reproduce_sfi_overheads().rendering)

    def test_small_schedule_records(self):
        """A full scheduling run, seed-pinned: request→machine assignments
        and completion times must stay bit-identical."""
        from repro import ScenarioSpec, TRMScheduler, TrustPolicy, materialize
        from repro.scheduling import MctHeuristic

        scenario = materialize(ScenarioSpec(n_tasks=12, target_load=3.0), seed=1234)
        result = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(unaware_fraction=0.9),
            MctHeuristic(),
        ).run(scenario.requests)
        lines = [
            f"{r.request_index} -> m{r.machine_index} "
            f"arrive={r.arrival_time:.6f} complete={r.completion_time:.6f} "
            f"tc={r.trust_cost:.0f}"
            for r in result.records
        ]
        check_golden("small_schedule", "\n".join(lines))

    def test_figure1_rendering(self):
        from repro.experiments.figures import reproduce_figure1

        check_golden("figure1", reproduce_figure1().rendering)

    def test_scenario_json_stable(self):
        """The serialisation format itself is frozen (format_version 1)."""
        import json

        from repro import ScenarioSpec, materialize
        from repro.workloads import scenario_to_dict

        scenario = materialize(ScenarioSpec(n_tasks=3, n_machines=2), seed=7)
        data = scenario_to_dict(scenario)
        check_golden(
            "scenario_json", json.dumps(data, indent=1, sort_keys=True)
        )


def _profiled_run():
    """One fixed-seed instrumented run shared by the exporter goldens."""
    from repro import ScenarioSpec, TRMScheduler, TrustPolicy, materialize
    from repro.obs import ProfiledRun
    from repro.scheduling import MctHeuristic

    spec = ScenarioSpec(n_tasks=8, n_machines=3, target_load=2.0)
    scenario = materialize(spec, seed=42)
    with ProfiledRun(name="golden", config=spec, seed=42) as prof:
        result = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            MctHeuristic(),
            tracer=prof.tracer,
            metrics=prof.metrics,
        ).run(scenario.requests)
        prof.record_result(result)
    return prof


class TestGoldenObservability:
    """Freeze the exporter formats: the JSONL trace is bit-stable for a
    fixed seed, and the manifest's schema (keys + deterministic values)
    must not drift without a conscious re-freeze."""

    def test_trace_jsonl_stable(self):
        from repro.obs import trace_to_jsonl_lines

        prof = _profiled_run()
        check_golden(
            "obs_trace_jsonl", "\n".join(trace_to_jsonl_lines(prof.tracer))
        )

    def test_manifest_schema_stable(self):
        """Golden over the manifest with wall-clock-dependent values
        masked: key layout, config hash, trace counts and all simulation-
        time metrics are deterministic and frozen."""
        import json

        prof = _profiled_run()
        manifest = prof.manifest()
        manifest["wall_time_s"] = "<wall>"
        for name in list(manifest["metrics"]):
            if "latency" in name or "wall" in name:
                manifest["metrics"][name] = "<wall-clock histogram>"
        check_golden(
            "obs_manifest", json.dumps(manifest, indent=1, sort_keys=True)
        )

    def test_chrome_trace_validates_and_is_stable(self):
        import json

        from repro.obs import chrome_trace_events

        prof = _profiled_run()
        events = chrome_trace_events(prof.tracer)
        # The trace_event format's required keys, on every event.
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert event["ph"] in ("X", "i")
        check_golden(
            "obs_chrome_trace", json.dumps(events, indent=1, sort_keys=True)
        )
