"""Tests for the simulation tracer."""

import pytest

from repro.sim.trace import Tracer


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(1.0, "arrival", request=1)
        tracer.emit(2.0, "assign", request=1, machine=0)
        tracer.emit(3.0, "arrival", request=2)
        assert len(tracer) == 3
        arrivals = tracer.entries("arrival")
        assert [e.detail["request"] for e in arrivals] == [1, 2]

    def test_disabled_records_nothing(self):
        tracer = Tracer.disabled()
        tracer.emit(1.0, "arrival")
        assert len(tracer) == 0

    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit(float(i), "tick", i=i)
        assert len(tracer) == 2
        assert [e.detail["i"] for e in tracer] == [3, 4]
        assert tracer.dropped == 3

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "x")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_entries_returns_copy(self):
        tracer = Tracer()
        tracer.emit(1.0, "x")
        entries = tracer.entries()
        entries.clear()
        assert len(tracer) == 1
