"""Tests for online statistics accumulators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import RunningStats, TimeWeightedStats

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=100
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.variance == 0.0
        assert s.stderr == 0.0

    def test_single_sample(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.minimum == s.maximum == 5.0

    @given(samples)
    def test_matches_numpy(self, values):
        s = RunningStats()
        s.extend(values)
        assert s.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(np.var(values, ddof=1), rel=1e-6, abs=1e-4)
        assert s.minimum == min(values)
        assert s.maximum == max(values)

    @given(samples, samples)
    def test_merge_equals_concatenation(self, a, b):
        sa, sb = RunningStats(), RunningStats()
        sa.extend(a)
        sb.extend(b)
        merged = sa.merge(sb)
        both = RunningStats()
        both.extend(a + b)
        assert merged.count == both.count
        assert merged.mean == pytest.approx(both.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(both.variance, rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        s = RunningStats()
        s.extend([1.0, 2.0])
        merged = s.merge(RunningStats())
        assert merged.count == 2
        assert merged.mean == 1.5
        other = RunningStats().merge(s)
        assert other.mean == 1.5

    def test_confidence_interval_brackets_mean(self):
        s = RunningStats()
        s.extend([1.0, 2.0, 3.0, 4.0])
        lo, hi = s.confidence_interval()
        assert lo <= s.mean <= hi
        assert hi > lo


class TestTimeWeightedStats:
    def test_piecewise_constant_average(self):
        tw = TimeWeightedStats()
        tw.update(0.0, 2.0)   # value 2 on [0, 10)
        tw.update(10.0, 4.0)  # value 4 on [10, 20]
        assert tw.average(until=20.0) == pytest.approx(3.0)

    def test_average_before_any_update(self):
        assert TimeWeightedStats().average(until=10.0) == 0.0

    def test_zero_span(self):
        tw = TimeWeightedStats()
        tw.update(5.0, 3.0)
        assert tw.average(until=5.0) == 0.0

    def test_out_of_order_update_rejected(self):
        tw = TimeWeightedStats()
        tw.update(10.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(5.0, 2.0)

    def test_until_before_last_update_rejected(self):
        tw = TimeWeightedStats()
        tw.update(10.0, 1.0)
        with pytest.raises(ValueError):
            tw.average(until=5.0)

    def test_nonzero_origin(self):
        tw = TimeWeightedStats()
        tw.update(10.0, 6.0)
        assert tw.average(until=20.0) == pytest.approx(6.0)
