"""Tests for the deterministic random-stream factory."""

import numpy as np
import pytest

from repro.sim.rng import RngFactory


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(seed=42)
        a = factory.stream("arrivals").random(10)
        b = factory.stream("arrivals").random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_names_independent(self):
        factory = RngFactory(seed=42)
        a = factory.stream("arrivals").random(10)
        b = factory.stream("eec").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(seed=1).stream("x").random(10)
        b = RngFactory(seed=2).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_child_factories_independent(self):
        factory = RngFactory(seed=42)
        a = factory.child("rep-0").stream("x").random(10)
        b = factory.child("rep-1").stream("x").random(10)
        parent = factory.stream("x").random(10)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, parent)

    def test_child_is_deterministic(self):
        a = RngFactory(seed=42).child("rep-0").stream("x").random(5)
        b = RngFactory(seed=42).child("rep-0").stream("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(seed=1).stream("")
        with pytest.raises(ValueError):
            RngFactory(seed=1).child("")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(seed=-1)
