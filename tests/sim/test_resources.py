"""Tests for capacity resources in the process layer."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Delay, spawn
from repro.sim.resources import Acquire, Release, Resource


class TestResourceObject:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Resource("x", capacity=0)

    def test_over_release_rejected(self):
        r = Resource("x", capacity=1)
        with pytest.raises(SimulationError, match="released more"):
            r._release()


class TestAcquireRelease:
    def test_serialises_contending_jobs(self):
        sim = Simulator()
        cpu = Resource("cpu", capacity=1)
        spans = []

        def job(name):
            def proc(env):
                yield Acquire(cpu)
                start = env.now
                yield Delay(10.0)
                spans.append((name, start, env.now))
                yield Release(cpu)

            return proc

        for i in range(3):
            spawn(sim, job(i), name=f"job-{i}")
        sim.run()
        # Jobs run back to back on the single unit.
        spans.sort(key=lambda s: s[1])
        assert [(s[1], s[2]) for s in spans] == [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0)]
        assert cpu.in_use == 0

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        cpu = Resource("cpu", capacity=2)
        finishes = []

        def job(env):
            yield Acquire(cpu)
            yield Delay(10.0)
            finishes.append(env.now)
            yield Release(cpu)

        for i in range(4):
            spawn(sim, job, name=f"j{i}")
        sim.run()
        assert sorted(finishes) == [10.0, 10.0, 20.0, 20.0]

    def test_fifo_fairness(self):
        sim = Simulator()
        res = Resource("r", capacity=1)
        order = []

        def holder(env):
            yield Acquire(res)
            yield Delay(5.0)
            yield Release(res)

        def waiter(name, arrive):
            def proc(env):
                yield Delay(arrive)
                yield Acquire(res)
                order.append(name)
                yield Release(res)

            return proc

        spawn(sim, holder)
        spawn(sim, waiter("first", 1.0))
        spawn(sim, waiter("second", 2.0))
        sim.run()
        assert order == ["first", "second"]

    def test_queue_length_visible_mid_run(self):
        sim = Simulator()
        res = Resource("r", capacity=1)

        def holder(env):
            yield Acquire(res)
            yield Delay(100.0)
            yield Release(res)

        def waiter(env):
            yield Acquire(res)
            yield Release(res)

        spawn(sim, holder)
        spawn(sim, waiter)
        sim.run(until=10.0)
        assert res.queue_length == 1
        assert res.available == 0
        sim.run()
        assert res.queue_length == 0
        assert res.available == 1
