"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.sim.arrivals import (
    BatchArrivalProcess,
    DeterministicProcess,
    PoissonProcess,
)


class TestPoissonProcess:
    def test_times_are_increasing(self, rng):
        proc = PoissonProcess(rate=0.5, rng=rng)
        times = proc.times(100)
        assert np.all(np.diff(times) > 0)
        assert times[0] > 0

    def test_mean_interarrival_matches_rate(self, rng):
        rate = 2.0
        times = PoissonProcess(rate=rate, rng=rng).times(20_000)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1.0 / rate, rel=0.05)

    def test_exponential_gaps_cv_near_one(self, rng):
        """Poisson arrivals have coefficient of variation 1."""
        times = PoissonProcess(rate=1.0, rng=rng).times(20_000)
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, rel=0.05)

    def test_start_offset(self, rng):
        times = PoissonProcess(rate=1.0, rng=rng, start=100.0).times(10)
        assert times[0] >= 100.0

    def test_zero_count(self, rng):
        assert PoissonProcess(rate=1.0, rng=rng).times(0).size == 0

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            PoissonProcess(rate=1.0, rng=rng).times(-1)

    def test_invalid_rate_rejected(self, rng):
        with pytest.raises(ValueError):
            PoissonProcess(rate=0.0, rng=rng)

    def test_determinism_per_stream(self):
        a = PoissonProcess(rate=1.0, rng=np.random.default_rng(9)).times(50)
        b = PoissonProcess(rate=1.0, rng=np.random.default_rng(9)).times(50)
        np.testing.assert_array_equal(a, b)


class TestDeterministicProcess:
    def test_even_spacing(self):
        times = DeterministicProcess(interval=2.0, start=1.0).times(4)
        assert times.tolist() == [1.0, 3.0, 5.0, 7.0]

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            DeterministicProcess(interval=-1.0)


class TestBatchArrivalProcess:
    def test_all_at_once(self):
        times = BatchArrivalProcess(at=5.0).times(3)
        assert times.tolist() == [5.0, 5.0, 5.0]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            BatchArrivalProcess(at=-1.0)
