"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import EventOrderError, SimulationError
from repro.sim.events import EventPriority
from repro.sim.kernel import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, None)
        sim.run()
        with pytest.raises(EventOrderError):
            sim.schedule(5.0, None)

    def test_negative_delay_rejected(self):
        with pytest.raises(EventOrderError):
            Simulator().schedule_after(-1.0, None)

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda ev: sim.schedule_after(5.0, lambda e: fired.append(e.time)))
        sim.run()
        assert fired == [15.0]


class TestExecution:
    def test_events_fire_in_order_and_advance_clock(self):
        sim = Simulator()
        log = []
        for t in [3.0, 1.0, 2.0]:
            sim.schedule(t, lambda ev: log.append((ev.time, sim.now)))
        end = sim.run()
        assert log == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        assert end == 3.0
        assert sim.processed == 3

    def test_handlers_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(ev):
            fired.append(ev.time)
            if ev.time < 3.0:
                sim.schedule(ev.time + 1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_stops_but_keeps_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda ev: fired.append(1))
        sim.schedule(10.0, lambda ev: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 10]

    def test_run_until_includes_boundary_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda ev: fired.append(ev.time))
        sim.run(until=5.0)
        assert fired == [5.0]

    def test_run_until_advances_idle_clock(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_step_fires_exactly_one(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda ev: fired.append(1))
        sim.schedule(2.0, lambda ev: fired.append(2))
        sim.step()
        assert fired == [1]

    def test_step_empty_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_cancelled_event_not_fired(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda e: fired.append(1))
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_event_budget_guards_runaway(self):
        sim = Simulator(max_events=10)

        def forever(ev):
            sim.schedule_after(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="budget"):
            sim.run()

    def test_exhaustion_diagnostic_names_the_simulator_state(self):
        sim = Simulator(max_events=5)

        def forever(ev):
            sim.schedule_after(1.0, forever)
            sim.schedule_after(2.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError) as exc:
            sim.run()
        message = str(exc.value)
        assert "event budget of 5" in message
        assert "clock at" in message
        assert "pending" in message
        # The head event is named with its time and priority.
        assert "next event at" in message
        assert "GENERIC" in message

    def test_drain_runs_to_empty_and_counts(self):
        sim = Simulator()
        fired = []

        def chain(ev):
            fired.append(ev.time)
            if ev.time < 4.0:
                sim.schedule_after(1.0, chain)

        sim.schedule(1.0, chain)
        sim.schedule(2.5, lambda ev: fired.append(ev.time))
        assert sim.drain() == 5
        assert sim.pending == 0
        assert fired == [1.0, 2.0, 2.5, 3.0, 4.0]
        # Draining an empty queue is a no-op that reports zero events.
        assert sim.drain() == 0

    def test_priority_ordering_at_same_instant(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda ev: order.append("batch"), priority=EventPriority.BATCH)
        sim.schedule(1.0, lambda ev: order.append("completion"), priority=EventPriority.COMPLETION)
        sim.schedule(1.0, lambda ev: order.append("arrival"), priority=EventPriority.ARRIVAL)
        sim.run()
        assert order == ["completion", "arrival", "batch"]
