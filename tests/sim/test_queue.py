"""Tests for the event queue and event objects."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.events import Event, EventPriority
from repro.sim.queue import EventQueue


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(time=-1.0)

    def test_fire_without_handler_is_noop(self):
        Event(time=0.0).fire()

    def test_fire_invokes_handler_with_event(self):
        seen = []
        ev = Event(time=1.0, handler=seen.append, payload="x")
        ev.fire()
        assert seen == [ev]
        assert seen[0].payload == "x"


class TestEventQueue:
    def test_pop_in_time_order(self):
        q = EventQueue()
        for t in [5.0, 1.0, 3.0]:
            q.push(Event(time=t))
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(Event(time=1.0, priority=EventPriority.BATCH))
        q.push(Event(time=1.0, priority=EventPriority.COMPLETION))
        q.push(Event(time=1.0, priority=EventPriority.ARRIVAL))
        got = [q.pop().priority for _ in range(3)]
        assert got == [
            EventPriority.COMPLETION,
            EventPriority.ARRIVAL,
            EventPriority.BATCH,
        ]

    def test_insertion_order_breaks_full_ties(self):
        q = EventQueue()
        first = q.push(Event(time=1.0, payload="first"))
        second = q.push(Event(time=1.0, payload="second"))
        assert q.pop() is first
        assert q.pop() is second

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        keep = q.push(Event(time=2.0))
        drop = q.push(Event(time=1.0))
        q.cancel(drop)
        assert len(q) == 1
        assert q.pop() is keep

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        ev = q.push(Event(time=1.0))
        q.push(Event(time=2.0))
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        early = q.push(Event(time=1.0))
        q.push(Event(time=2.0))
        q.cancel(early)
        assert q.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_bool_reflects_live_events(self):
        q = EventQueue()
        assert not q
        ev = q.push(Event(time=1.0))
        assert q
        q.cancel(ev)
        assert not q

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_pop_order_is_sorted(self, times):
        """Property: popping everything yields times in sorted order."""
        q = EventQueue()
        for t in times:
            q.push(Event(time=t))
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(times)
