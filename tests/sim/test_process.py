"""Tests for the coroutine process layer."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Condition, Delay, ProcessEnv, Signal, WaitFor, spawn


class TestDelay:
    def test_sequence_of_delays(self):
        sim = Simulator()
        trace = []

        def proc(env: ProcessEnv):
            trace.append(env.now)
            yield Delay(5.0)
            trace.append(env.now)
            yield Delay(2.5)
            trace.append(env.now)

        env = spawn(sim, proc)
        sim.run()
        assert trace == [0.0, 5.0, 7.5]
        assert env.finished

    def test_start_at(self):
        sim = Simulator()
        seen = []

        def proc(env):
            seen.append(env.now)
            yield Delay(1.0)

        spawn(sim, proc, at=10.0)
        sim.run()
        assert seen == [10.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1.0)


class TestConditions:
    def test_signal_wakes_waiters(self):
        sim = Simulator()
        done = Condition("done")
        log = []

        def worker(env):
            yield Delay(5.0)
            log.append(("worker", env.now))
            yield Signal(done)

        def watcher(env):
            yield WaitFor(done)
            log.append(("watcher", env.now))

        spawn(sim, worker)
        spawn(sim, watcher)
        sim.run()
        assert ("worker", 5.0) in log
        assert ("watcher", 5.0) in log
        assert done.fired_count == 1

    def test_signal_reports_woken_count(self):
        sim = Simulator()
        cond = Condition()
        woken_counts = []

        def waiter(env):
            yield WaitFor(cond)

        def signaller(env):
            yield Delay(1.0)
            count = yield Signal(cond)
            woken_counts.append(count)

        spawn(sim, waiter)
        spawn(sim, waiter, name="waiter-2")
        spawn(sim, signaller)
        sim.run()
        assert woken_counts == [2]

    def test_waiting_count(self):
        sim = Simulator()
        cond = Condition()

        def waiter(env):
            yield WaitFor(cond)

        spawn(sim, waiter)
        sim.run(until=0.5)
        assert cond.waiting == 1

    def test_signal_with_no_waiters_is_fine(self):
        sim = Simulator()
        cond = Condition()

        def signaller(env):
            count = yield Signal(cond)
            assert count == 0

        env = spawn(sim, signaller)
        sim.run()
        assert env.finished


class TestErrors:
    def test_non_generator_rejected(self):
        sim = Simulator()

        def not_a_process(env):
            return 42

        with pytest.raises(SimulationError, match="generator"):
            spawn(sim, not_a_process)

    def test_unsupported_command(self):
        sim = Simulator()

        def bad(env):
            yield "nonsense"

        spawn(sim, bad)
        with pytest.raises(SimulationError, match="unsupported command"):
            sim.run()


class TestComposition:
    def test_pipeline_of_processes(self):
        """Producer/consumer chain driven purely by conditions."""
        sim = Simulator()
        stages = [Condition(f"stage-{i}") for i in range(3)]
        completions = []

        def stage(i):
            def proc(env):
                if i > 0:
                    yield WaitFor(stages[i - 1])
                yield Delay(10.0)
                completions.append((i, env.now))
                yield Signal(stages[i])

            return proc

        for i in range(3):
            spawn(sim, stage(i), name=f"stage-{i}")
        sim.run()
        assert completions == [(0, 10.0), (1, 20.0), (2, 30.0)]
