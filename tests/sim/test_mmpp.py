"""Tests for the Markov-modulated Poisson arrival process."""

import numpy as np
import pytest

from repro.sim.arrivals import PoissonProcess
from repro.sim.mmpp import MmppProcess


def make(rng, **kwargs) -> MmppProcess:
    defaults = dict(
        quiet_rate=0.01,
        burst_rate=0.2,
        quiet_duration=500.0,
        burst_duration=100.0,
        rng=rng,
    )
    defaults.update(kwargs)
    return MmppProcess(**defaults)


class TestMmppProcess:
    def test_times_increasing(self, rng):
        times = make(rng).times(500)
        assert np.all(np.diff(times) > 0)

    def test_mean_rate_formula(self, rng):
        proc = make(rng)
        expected = (0.01 * 500 + 0.2 * 100) / 600
        assert proc.mean_rate == pytest.approx(expected)

    def test_long_run_rate_matches_mean(self, rng):
        proc = make(rng)
        n = 20_000
        times = proc.times(n)
        empirical = n / times[-1]
        assert empirical == pytest.approx(proc.mean_rate, rel=0.1)

    def test_burstier_than_poisson(self, rng):
        """The MMPP's inter-arrival CoV exceeds the Poisson's 1."""
        proc = make(rng)
        gaps = np.diff(proc.times(20_000))
        cov_mmpp = gaps.std() / gaps.mean()
        poisson = PoissonProcess(rate=proc.mean_rate, rng=rng)
        gaps_p = np.diff(poisson.times(20_000))
        cov_poisson = gaps_p.std() / gaps_p.mean()
        assert cov_mmpp > cov_poisson * 1.2
        assert cov_mmpp > 1.3

    def test_start_offset(self, rng):
        times = make(rng, start=100.0).times(10)
        assert times[0] >= 100.0

    def test_zero_count(self, rng):
        assert make(rng).times(0).size == 0

    def test_determinism(self):
        a = make(np.random.default_rng(3)).times(100)
        b = make(np.random.default_rng(3)).times(100)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quiet_rate": 0.0},
            {"burst_rate": 0.005},  # below quiet rate
            {"quiet_duration": 0.0},
            {"burst_duration": -1.0},
            {"start": -1.0},
        ],
    )
    def test_validation(self, rng, kwargs):
        with pytest.raises(ValueError):
            make(rng, **kwargs)


class TestLoadEquivalent:
    def test_hits_target_mean_rate(self, rng):
        proc = MmppProcess.load_equivalent(0.05, rng, burstiness=4.0)
        assert proc.mean_rate == pytest.approx(0.05)
        assert proc.burst_rate == pytest.approx(4.0 * proc.quiet_rate)

    def test_empirical_rate(self, rng):
        proc = MmppProcess.load_equivalent(0.05, rng)
        times = proc.times(20_000)
        assert 20_000 / times[-1] == pytest.approx(0.05, rel=0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            MmppProcess.load_equivalent(0.0, rng)
        with pytest.raises(ValueError):
            MmppProcess.load_equivalent(0.05, rng, burstiness=1.0)
