"""Cross-module integration tests.

Each test exercises a full user-facing flow across several packages — the
kind of path a downstream adopter would wire up — rather than one module's
contract.
"""

import numpy as np
import pytest

from repro import (
    ScenarioSpec,
    SecurityAccounting,
    TRMScheduler,
    TrustPolicy,
    materialize,
)
from repro.experiments import (
    PAPER_BATCH_INTERVAL,
    paper_policies,
    paper_spec,
    run_paired_cell,
)
from repro.grid import (
    BehaviorModel,
    GridSession,
    StationaryBehavior,
)
from repro.metrics import PairedComparison
from repro.scheduling import LadderEsc, make_heuristic
from repro.security import plan_supplement
from repro.workloads import Consistency, load_scenario, save_scenario


class TestPaperPipeline:
    """The core paper flow: scenario -> paired schedules -> improvement."""

    @pytest.mark.parametrize("heuristic", ["mct", "min-min", "sufferage"])
    def test_paper_heuristics_improve(self, heuristic):
        aware, unaware = paper_policies()
        spec = paper_spec(30, Consistency.INCONSISTENT)
        cell = run_paired_cell(
            spec,
            heuristic,
            aware,
            unaware,
            replications=5,
            batch_interval=PAPER_BATCH_INTERVAL,
        )
        assert cell.mean_improvement > 0.10
        assert cell.significance().significant()

    def test_fast_heuristics_through_full_scheduler(self):
        """The vectorised fast paths are usable as drop-ins end to end."""
        scenario = materialize(ScenarioSpec(n_tasks=25, target_load=4.0), seed=3)
        policy = TrustPolicy.aware(unaware_fraction=0.9)
        ref = TRMScheduler(
            scenario.grid, scenario.eec, policy, make_heuristic("sufferage"),
            batch_interval=300.0,
        ).run(scenario.requests)
        fast = TRMScheduler(
            scenario.grid, scenario.eec, policy, make_heuristic("sufferage-fast"),
            batch_interval=300.0,
        ).run(scenario.requests)
        assert [r.completion_time for r in ref.records] == [
            r.completion_time for r in fast.records
        ]


class TestSecurityToSchedulingBridge:
    """The ladder ESC model ties Section 5.1 to Section 4 costs."""

    def test_ladder_esc_model_run(self):
        scenario = materialize(ScenarioSpec(n_tasks=20, target_load=4.0), seed=5)
        linear = TrustPolicy.aware(unaware_fraction=0.9)
        ladder = TrustPolicy.aware(unaware_fraction=0.9, esc_model=LadderEsc())
        r_linear = TRMScheduler(
            scenario.grid, scenario.eec, linear, make_heuristic("mct")
        ).run(scenario.requests)
        r_ladder = TRMScheduler(
            scenario.grid, scenario.eec, ladder, make_heuristic("mct")
        ).run(scenario.requests)
        pair_a = PairedComparison(aware=r_linear, unaware=r_ladder)
        # The two ESC groundings agree to within a few percent.
        assert abs(pair_a.completion_improvement) < 0.10

    def test_security_plan_explains_realized_cost(self):
        """For any completed request, the micro-level plan's overhead is in
        the ballpark of the scalar ESC the scheduler charged."""
        scenario = materialize(ScenarioSpec(n_tasks=15, target_load=3.0), seed=7)
        policy = TrustPolicy.aware(esc_model=LadderEsc())
        result = TRMScheduler(
            scenario.grid, scenario.eec, policy, make_heuristic("mct")
        ).run(scenario.requests)
        for rec in result.records:
            request = scenario.requests[rec.request_index]
            plan = plan_supplement(request.task.activities, int(rec.trust_cost))
            expected = rec.eec * plan.overhead_fraction
            assert rec.security_cost == pytest.approx(expected, rel=1e-6)


class TestSerializationPipeline:
    def test_save_schedule_reload_schedule(self, tmp_path):
        scenario = materialize(ScenarioSpec(n_tasks=12, target_load=3.0), seed=9)
        path = save_scenario(scenario, tmp_path / "s.json")
        reloaded = load_scenario(path)
        policy = TrustPolicy.unaware(accounting=SecurityAccounting.PAIR_REALIZED)
        a = TRMScheduler(
            scenario.grid, scenario.eec, policy, make_heuristic("kpb")
        ).run(scenario.requests)
        b = TRMScheduler(
            reloaded.grid, reloaded.eec, policy, make_heuristic("kpb")
        ).run(reloaded.requests)
        assert a.makespan == pytest.approx(b.makespan)


class TestClosedLoopImprovesScheduling:
    def test_learned_trust_lowers_trust_costs(self):
        """After the agents learn that the domains behave well, the aware
        scheduler pays lower trust costs than it did cold."""
        grid = materialize(
            ScenarioSpec(cd_range=(2, 2), rd_range=(3, 3)), seed=11
        ).grid
        # Start cold: minimum offered trust everywhere.
        grid.trust_table.fill_from(
            np.ones(grid.trust_table.shape, dtype=np.int64)
        )
        session = GridSession(
            grid=grid,
            behavior=BehaviorModel(profiles={}, default=StationaryBehavior(0.92)),
            policy=TrustPolicy.aware(unaware_fraction=0.9),
            seed=2,
        )
        result = session.run(rounds=5, requests_per_round=30)
        assert result.trust_cost_series[-1] < result.trust_cost_series[0]


class TestBurstyScheduling:
    def test_mmpp_scenario_through_full_scheduler(self):
        """A bursty workload runs through every mode without surprises."""
        spec = ScenarioSpec(n_tasks=30, target_load=4.0, burstiness=5.0)
        scenario = materialize(spec, seed=6)
        policy = TrustPolicy.aware(unaware_fraction=0.9)
        for name, interval in (("mct", None), ("min-min", 400.0)):
            result = TRMScheduler(
                scenario.grid,
                scenario.eec,
                policy,
                make_heuristic(name),
                batch_interval=interval,
            ).run(scenario.requests)
            assert len(result) == 30
            assert result.makespan > 0


class TestSchedulingTables579:
    """Quick shape checks for the consistent-class tables (5, 7, 9)."""

    @pytest.mark.parametrize("number", [5, 7, 9])
    def test_trust_aware_wins(self, number):
        from repro.experiments import reproduce_scheduling_table

        repro_table = reproduce_scheduling_table(
            number, replications=3, task_counts=(20,), base_seed=0
        )
        cell = repro_table.data["cells"][20]
        assert cell.mean_improvement > 0.05
