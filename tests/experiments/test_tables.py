"""Tests for the table reproductions (shape checks against the paper)."""

import pytest

from repro.experiments.config import (
    SCHEDULING_TABLES,
    paper_policies,
    paper_spec,
    table_config,
)
from repro.experiments.tables import (
    TRANSFER_FILE_SIZES_MB,
    reproduce_scheduling_table,
    reproduce_sfi_overheads,
    reproduce_table1,
    reproduce_table2,
    reproduce_table3,
)
from repro.workloads.consistency import Consistency


class TestConfig:
    def test_all_six_scheduling_tables_defined(self):
        assert sorted(SCHEDULING_TABLES) == [4, 5, 6, 7, 8, 9]

    def test_table_config_lookup(self):
        cfg = table_config(8)
        assert cfg.heuristic == "sufferage"
        assert cfg.consistency is Consistency.INCONSISTENT
        with pytest.raises(KeyError):
            table_config(10)

    def test_paper_spec_defaults(self):
        spec = paper_spec(50, Consistency.CONSISTENT)
        assert spec.n_machines == 5
        assert spec.consistency is Consistency.CONSISTENT

    def test_paper_policies_pair(self):
        aware, unaware = paper_policies()
        assert aware.trust_aware and not unaware.trust_aware
        assert aware.accounting is unaware.accounting


class TestStaticTables:
    def test_table1_mean_and_layout(self):
        repro = reproduce_table1()
        assert "requested TL" in repro.rendering
        assert repro.data["matrix"].shape == (6, 5)

    def test_table2_rows_cover_paper_sizes(self):
        repro = reproduce_table2()
        assert set(repro.data["rows"]) == set(TRANSFER_FILE_SIZES_MB)
        for size in TRANSFER_FILE_SIZES_MB:
            row = repro.data["rows"][size]
            assert row["scp"] > row["rcp"]

    def test_table3_overheads_exceed_table2_for_large_files(self):
        t2 = reproduce_table2().data["rows"]
        t3 = reproduce_table3().data["rows"]
        for size in (100, 500, 1000):
            assert t3[size]["overhead"] > t2[size]["overhead"]

    def test_sfi_table_matches_paper_shape(self):
        repro = reproduce_sfi_overheads()
        rows = repro.data["rows"]
        assert rows["page-eviction hotlist"]["sasi"] > rows["page-eviction hotlist"]["misfit"]
        assert rows["MD5"]["misfit"] == pytest.approx(0.33, rel=0.1)


class TestSchedulingTables:
    """Small-replication smoke reproductions of Tables 4-9.

    The full-replication runs live in benchmarks/; here we assert the
    qualitative shape with a handful of replications to keep tests fast.
    """

    @pytest.mark.parametrize("number", [4, 6, 8])
    def test_trust_aware_wins(self, number):
        repro = reproduce_scheduling_table(
            number, replications=4, task_counts=(20,), base_seed=0
        )
        cell = repro.data["cells"][20]
        assert cell.mean_improvement > 0.05
        assert cell.aware_completion.mean < cell.unaware_completion.mean

    def test_rendering_contains_paper_columns(self):
        repro = reproduce_scheduling_table(4, replications=2, task_counts=(50,))
        assert "Using trust" in repro.rendering
        assert "Improvement" in repro.rendering
        assert "36.99%" in repro.rendering  # the paper's value shown alongside

    def test_task_counts_configurable(self):
        repro = reproduce_scheduling_table(5, replications=2, task_counts=(10, 15))
        assert sorted(repro.data["cells"]) == [10, 15]
