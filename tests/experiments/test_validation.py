"""Tests for the codified acceptance checks."""

import pytest

from repro.experiments.validation import CheckResult, validate_reproduction


@pytest.fixture(scope="module")
def checks():
    return validate_reproduction(replications=4)


class TestValidateReproduction:
    def test_all_checks_pass(self, checks):
        failed = [c for c in checks if not c.passed]
        assert not failed, "; ".join(str(c) for c in failed)

    def test_expected_check_names(self, checks):
        names = {c.name for c in checks}
        assert names == {
            "trust-aware-wins",
            "minmin-gains-least",
            "mct-high-utilization",
            "scp-overhead-negates-fast-network",
            "sfi-ordering",
        }

    def test_details_are_informative(self, checks):
        for check in checks:
            assert check.detail

    def test_str_rendering(self):
        assert str(CheckResult("x", True, "ok")) == "[PASS] x: ok"
        assert str(CheckResult("x", False, "bad")).startswith("[FAIL]")

    def test_cli_validate(self, capsys):
        from repro.cli import main

        assert main(["validate", "--replications", "3"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] trust-aware-wins" in out
