"""Tests for the paired-replication experiment runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_paired_cell, run_single
from repro.scheduling.policy import TrustPolicy
from repro.workloads.scenario import ScenarioSpec

SPEC = ScenarioSpec(n_tasks=10, target_load=3.0)


class TestRunSingle:
    def test_immediate_heuristic(self):
        result = run_single(SPEC, "mct", TrustPolicy.aware(), seed=0)
        assert len(result) == 10
        assert result.heuristic == "mct"

    def test_batch_heuristic_uses_interval(self):
        result = run_single(
            SPEC, "min-min", TrustPolicy.aware(), seed=0, batch_interval=100.0
        )
        assert len(result) == 10
        assert all(r.mapped_time % 100.0 == 0 for r in result.records)

    def test_interval_ignored_for_immediate(self):
        result = run_single(
            SPEC, "mct", TrustPolicy.aware(), seed=0, batch_interval=100.0
        )
        assert result.heuristic == "mct"


class TestRunPairedCell:
    def test_aggregates_replications(self):
        cell = run_paired_cell(
            SPEC,
            "mct",
            TrustPolicy.aware(),
            TrustPolicy.unaware(),
            replications=5,
        )
        assert cell.replications == 5
        assert cell.improvement.count == 5
        assert cell.aware_completion.count == 5
        assert cell.n_tasks == 10

    def test_deterministic_given_base_seed(self):
        kwargs = dict(replications=3, base_seed=42)
        a = run_paired_cell(SPEC, "mct", TrustPolicy.aware(), TrustPolicy.unaware(), **kwargs)
        b = run_paired_cell(SPEC, "mct", TrustPolicy.aware(), TrustPolicy.unaware(), **kwargs)
        assert a.improvement.mean == b.improvement.mean
        assert a.unaware_completion.mean == b.unaware_completion.mean

    def test_policy_pair_validated(self):
        with pytest.raises(ConfigurationError):
            run_paired_cell(
                SPEC, "mct", TrustPolicy.unaware(), TrustPolicy.unaware(), replications=1
            )

    def test_replications_validated(self):
        with pytest.raises(ConfigurationError):
            run_paired_cell(
                SPEC, "mct", TrustPolicy.aware(), TrustPolicy.unaware(), replications=0
            )

    def test_batch_heuristic_cell(self):
        cell = run_paired_cell(
            SPEC,
            "sufferage",
            TrustPolicy.aware(),
            TrustPolicy.unaware(),
            replications=2,
            batch_interval=200.0,
        )
        assert cell.heuristic == "sufferage"
        assert cell.replications == 2
