"""Worker-pool wiring: every parallel entry point matches sequential exactly.

``run_paired_cell_parallel`` itself is covered in ``test_parallel.py``;
these tests pin the *consumers* — table reproduction, the fault-recovery
study and the trust-fault study — whose arms/replications are independent,
so spreading them over a process pool must be bit-identical to running
them in order.  Sizes are kept tiny: the point is equality, not load.
"""

from repro.experiments.faulttol import run_fault_recovery
from repro.experiments.tables import reproduce_scheduling_table
from repro.experiments.trustfaults import run_trustfault_study


def _outcome_key(outcome):
    return (
        outcome.label,
        outcome.completed,
        outcome.dropped,
        outcome.rejected,
        outcome.failures,
        outcome.wasted_work,
        outcome.useful_work,
        outcome.horizon,
    )


class TestSchedulingTableWorkers:
    def test_parallel_rendering_is_byte_identical(self):
        kwargs = dict(replications=4, task_counts=(20,), base_seed=3)
        seq = reproduce_scheduling_table(6, workers=1, **kwargs)
        par = reproduce_scheduling_table(6, workers=2, **kwargs)
        assert par.rendering == seq.rendering
        for n_tasks, cell in seq.data["cells"].items():
            par_cell = par.data["cells"][n_tasks]
            assert par_cell.aware_samples == cell.aware_samples
            assert par_cell.unaware_samples == cell.unaware_samples
            assert par_cell.mean_improvement == cell.mean_improvement


class TestFaultRecoveryWorkers:
    def test_parallel_arms_match_sequential(self):
        kwargs = dict(seed=5, rounds=2, requests_per_round=6)
        seq = run_fault_recovery(workers=1, **kwargs)
        par = run_fault_recovery(workers=2, **kwargs)
        assert _outcome_key(par.aware) == _outcome_key(seq.aware)
        assert _outcome_key(par.unaware) == _outcome_key(seq.unaware)


class TestTrustFaultWorkers:
    def test_parallel_arms_match_sequential(self):
        kwargs = dict(seed=5, rounds=2, requests_per_round=6)
        seq = run_trustfault_study(workers=1, **kwargs)
        par = run_trustfault_study(workers=3, **kwargs)
        assert par.to_dict() == seq.to_dict()
