"""Tests for series generation and ASCII charts."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.series import (
    Series,
    SeriesPoint,
    ascii_chart,
    improvement_vs_batch_interval,
    improvement_vs_load,
    improvement_vs_machines,
)


class TestSeriesStructure:
    def test_points_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            Series("x", (SeriesPoint(2.0, 0.1), SeriesPoint(1.0, 0.2)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Series("x", ())

    def test_accessors(self):
        s = Series("x", (SeriesPoint(1.0, 0.1), SeriesPoint(2.0, 0.3)))
        assert s.xs == [1.0, 2.0]
        assert s.ys == [0.1, 0.3]


class TestGenerators:
    def test_improvement_vs_load_rises(self):
        s = improvement_vs_load(loads=(0.5, 4.0), replications=4)
        assert len(s.points) == 2
        assert s.points[-1].y > s.points[0].y
        assert all(p.ci >= 0 for p in s.points)

    def test_improvement_vs_machines(self):
        s = improvement_vs_machines(machine_counts=(3, 6), replications=3)
        assert s.xs == [3.0, 6.0]

    def test_improvement_vs_batch_interval_falls(self):
        s = improvement_vs_batch_interval(intervals=(150.0, 1200.0), replications=4)
        # Bigger batches strengthen the unaware baseline -> smaller gain.
        assert s.points[0].y > s.points[-1].y


class TestAsciiChart:
    @pytest.fixture
    def series(self):
        return Series(
            "demo",
            (
                SeriesPoint(0.0, 0.10, ci=0.02),
                SeriesPoint(1.0, 0.25, ci=0.01),
                SeriesPoint(2.0, 0.35, ci=0.03),
            ),
        )

    def test_chart_contains_marks_and_label(self, series):
        chart = ascii_chart(series)
        assert "demo" in chart
        assert "*" in chart
        assert "·" in chart

    def test_chart_dimensions(self, series):
        chart = ascii_chart(series, width=40, height=8)
        lines = chart.splitlines()
        # label + height rows + axis + x labels
        assert len(lines) == 1 + 8 + 2

    def test_flat_series_renders(self):
        s = Series("flat", (SeriesPoint(0.0, 0.2), SeriesPoint(1.0, 0.2)))
        assert "*" in ascii_chart(s)

    def test_single_point_renders(self):
        s = Series("one", (SeriesPoint(0.0, 0.2),))
        assert "*" in ascii_chart(s)

    def test_bad_dimensions_rejected(self, series):
        with pytest.raises(ConfigurationError):
            ascii_chart(series, width=5)
        with pytest.raises(ConfigurationError):
            ascii_chart(series, height=2)

    def test_cli_series(self, capsys):
        from repro.cli import main

        assert main(["series", "machines", "--replications", "2"]) == 0
        out = capsys.readouterr().out
        assert "improvement vs machines" in out
