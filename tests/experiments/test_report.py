"""Tests for the full-report generator."""

import pytest

from repro.experiments.report import generate_report, write_report


@pytest.fixture(scope="module")
def report():
    # Tiny replication count: this exercises structure, not statistics.
    return generate_report(replications=2)


class TestGenerateReport:
    def test_contains_every_table(self, report):
        for name in ["table1", "table2", "table3", "sfi"] + [
            f"table{n}" for n in range(4, 10)
        ]:
            assert name in report.tables
            assert f"## {name}" in report.markdown

    def test_scheduling_sections_have_significance_lines(self, report):
        assert "paired t(" in report.markdown
        assert "p = " in report.markdown

    def test_markdown_is_str_of_report(self, report):
        assert str(report) == report.markdown

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", replications=2)
        text = path.read_text()
        assert text.startswith("# Reproduction report")
        assert "table9" in text


class TestCliCommands:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--output", str(out), "--replications", "2"]) == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out

    def test_families_command(self, capsys):
        from repro.cli import main

        assert main(["families", "--replications", "2", "--tasks", "15"]) == 0
        out = capsys.readouterr().out
        assert "sufferage" in out and "duplex" in out

    def test_ablations_command(self, capsys):
        from repro.cli import main

        assert main(["ablations", "--replications", "2"]) == 0
        out = capsys.readouterr().out
        assert "unaware_fraction" in out

    def test_session_command(self, capsys):
        from repro.cli import main

        assert main(["session", "--rounds", "2", "--requests", "10"]) == 0
        out = capsys.readouterr().out
        assert "trust evolution" in out
