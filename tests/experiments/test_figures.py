"""Tests for the Figure-1 reproduction and supplementary series."""

import networkx as nx

from repro.experiments.figures import improvement_vs_load_series, reproduce_figure1
from repro.workloads.scenario import ScenarioSpec, materialize


class TestFigure1:
    def test_component_graph_wiring(self):
        fig = reproduce_figure1()
        g = fig.graph
        assert "trust-level-table" in g
        assert "trm-scheduler" in g
        # The scheduler reads the table.
        assert g.has_edge("trm-scheduler", "trust-level-table")

    def test_every_domain_has_an_agent_updating_the_table(self):
        grid = materialize(ScenarioSpec(cd_range=(3, 3), rd_range=(2, 2)), seed=1).grid
        g = reproduce_figure1(grid).graph
        for i in range(3):
            assert g.has_edge(f"agent:CD{i}", "trust-level-table")
            assert g.has_edge(f"agent:CD{i}", f"CD{i}")
        for j in range(2):
            assert g.has_edge(f"agent:RD{j}", "trust-level-table")

    def test_clients_submit_and_scheduler_allocates(self):
        fig = reproduce_figure1()
        g = fig.graph
        cd_edges = [e for e in g.edges(data=True) if e[2].get("relation") == "submits-requests"]
        rd_edges = [e for e in g.edges(data=True) if e[2].get("relation") == "allocates"]
        assert cd_edges and rd_edges
        assert all(e[1] == "trm-scheduler" for e in cd_edges)
        assert all(e[0] == "trm-scheduler" for e in rd_edges)

    def test_rendering_mentions_components(self):
        text = reproduce_figure1().rendering
        assert "trust level table" in text
        assert "TRM scheduler" in text
        assert text.startswith("Figure 1.")

    def test_graph_is_dag(self):
        assert nx.is_directed_acyclic_graph(reproduce_figure1().graph)


class TestImprovementSeries:
    def test_series_shape(self):
        series = improvement_vs_load_series(
            "mct", loads=(1.0, 4.0), n_tasks=15, replications=3
        )
        assert [load for load, _ in series] == [1.0, 4.0]
        # Higher load amplifies the trust advantage.
        assert series[1][1] > series[0][1]
