"""Tests for the experiment cell cache."""

import pytest

from repro.experiments.cache import CellCache, cell_key
from repro.experiments.runner import run_paired_cell
from repro.scheduling.policy import SecurityAccounting, TrustPolicy
from repro.workloads.scenario import ScenarioSpec

SPEC = ScenarioSpec(n_tasks=8, target_load=3.0)
AWARE = TrustPolicy.aware()
UNAWARE = TrustPolicy.unaware()


def key_for(**overrides):
    args = dict(
        spec=SPEC,
        heuristic="mct",
        aware=AWARE,
        unaware=UNAWARE,
        replications=3,
        base_seed=0,
        batch_interval=None,
    )
    args.update(overrides)
    return cell_key(**args)


class TestCellKey:
    def test_stable(self):
        assert key_for() == key_for()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"heuristic": "olb"},
            {"replications": 4},
            {"base_seed": 1},
            {"batch_interval": 100.0},
            {"spec": ScenarioSpec(n_tasks=9, target_load=3.0)},
            {"aware": TrustPolicy.aware(tc_weight=10.0)},
            {"unaware": TrustPolicy.unaware(accounting=SecurityAccounting.PAIR_REALIZED)},
        ],
    )
    def test_every_input_changes_the_key(self, overrides):
        assert key_for(**overrides) != key_for()


class TestCellCache:
    def test_miss_then_hit(self, tmp_path):
        cache = CellCache(tmp_path / "cells")
        key = key_for()
        assert cache.get(key) is None
        first = cache.run_paired_cell(
            SPEC, "mct", AWARE, UNAWARE, replications=3
        )
        assert cache.get(key) is not None
        second = cache.run_paired_cell(
            SPEC, "mct", AWARE, UNAWARE, replications=3
        )
        assert second.aware_samples == first.aware_samples
        assert second.improvement.mean == pytest.approx(first.improvement.mean)

    def test_cached_equals_direct(self, tmp_path):
        cache = CellCache(tmp_path / "cells")
        cached = cache.run_paired_cell(SPEC, "mct", AWARE, UNAWARE, replications=3)
        direct = run_paired_cell(SPEC, "mct", AWARE, UNAWARE, replications=3)
        assert cached.aware_samples == direct.aware_samples
        assert cached.unaware_samples == direct.unaware_samples
        assert cached.improvement.variance == pytest.approx(direct.improvement.variance)

    def test_round_trip_preserves_stats(self, tmp_path):
        cache = CellCache(tmp_path / "cells")
        cell = run_paired_cell(SPEC, "mct", AWARE, UNAWARE, replications=4)
        cache.put("k", cell)
        back = cache.get("k")
        assert back.aware_completion.mean == pytest.approx(cell.aware_completion.mean)
        assert back.aware_completion.stddev == pytest.approx(cell.aware_completion.stddev)
        assert back.significance().p_value == pytest.approx(cell.significance().p_value)

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = CellCache(tmp_path / "cells")
        cache.directory.mkdir(parents=True)
        (cache.directory / "bad.json").write_text('{"heuristic": "mct"}')
        assert cache.get("bad") is None
