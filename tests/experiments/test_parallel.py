"""Tests for the parallel experiment runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import run_paired_cell_parallel
from repro.experiments.runner import run_paired_cell
from repro.scheduling.policy import TrustPolicy
from repro.workloads.scenario import ScenarioSpec

SPEC = ScenarioSpec(n_tasks=10, target_load=3.0)
AWARE = TrustPolicy.aware()
UNAWARE = TrustPolicy.unaware()


class TestParallelRunner:
    def test_matches_sequential_exactly(self):
        kwargs = dict(replications=6, base_seed=11)
        seq = run_paired_cell(SPEC, "mct", AWARE, UNAWARE, **kwargs)
        par = run_paired_cell_parallel(SPEC, "mct", AWARE, UNAWARE, workers=3, **kwargs)
        assert par.aware_samples == seq.aware_samples
        assert par.unaware_samples == seq.unaware_samples
        assert par.improvement.mean == pytest.approx(seq.improvement.mean)
        assert par.aware_utilization.mean == pytest.approx(seq.aware_utilization.mean)

    def test_small_cells_fall_back_to_sequential(self):
        cell = run_paired_cell_parallel(
            SPEC, "mct", AWARE, UNAWARE, replications=2, workers=4
        )
        assert cell.replications == 2

    def test_single_worker_falls_back(self):
        cell = run_paired_cell_parallel(
            SPEC, "mct", AWARE, UNAWARE, replications=6, workers=1
        )
        assert cell.replications == 6

    def test_batch_heuristic(self):
        cell = run_paired_cell_parallel(
            SPEC,
            "min-min",
            AWARE,
            UNAWARE,
            replications=4,
            batch_interval=200.0,
            workers=2,
        )
        assert cell.heuristic == "min-min"
        assert len(cell.aware_samples) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_paired_cell_parallel(SPEC, "mct", AWARE, UNAWARE, replications=0)
        with pytest.raises(ConfigurationError):
            run_paired_cell_parallel(
                SPEC, "mct", UNAWARE, UNAWARE, replications=4
            )
        with pytest.raises(ConfigurationError):
            run_paired_cell_parallel(
                SPEC, "mct", AWARE, UNAWARE, replications=4, workers=0
            )
