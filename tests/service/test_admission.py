"""Tests for the ingestion plane's admission control."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    ShedReason,
    TokenBucket,
)


def request(index: int, arrival: float = 0.0):
    # Only index/arrival_time matter to admission; a light stand-in keeps
    # these tests independent of grid construction.
    return SimpleNamespace(index=index, arrival_time=arrival)


class TestTokenBucket:
    def test_validations(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=-1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.5)

    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_with_simulated_time(self):
        bucket = TokenBucket(rate=0.5, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(1.0)  # only 0.5 tokens accrued
        assert bucket.try_take(2.0)  # a full token after 2 s at rate 0.5

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        bucket.refill(1_000.0)
        assert bucket.tokens == 3.0

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=5.0)
        assert bucket.try_take(10.0)
        bucket.refill(5.0)
        assert bucket.last_refill == 10.0

    def test_state_round_trip(self):
        bucket = TokenBucket(rate=0.3, burst=4.0)
        bucket.try_take(7.5)
        clone = TokenBucket(rate=0.3, burst=4.0)
        clone.restore(bucket.state_dict())
        assert clone.tokens == bucket.tokens
        assert clone.last_refill == bucket.last_refill


class TestAdmissionPolicy:
    def test_validations(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(rate=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(burst=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(deadline=-1.0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(accept_horizon=-0.5)

    def test_unlimited(self):
        policy = AdmissionPolicy.unlimited()
        assert policy.is_unlimited
        assert not AdmissionPolicy(queue_capacity=5).is_unlimited
        assert not AdmissionPolicy(rate=1.0).is_unlimited


class TestDecisionOrder:
    def test_unlimited_admits_everything(self):
        ctl = AdmissionController(AdmissionPolicy.unlimited())
        verdict = ctl.decide(
            request(0), 0.0, queue=[], queue_bounded=True, backpressure=False
        )
        assert verdict is None

    def test_accept_horizon_sheds_as_draining(self):
        ctl = AdmissionController(AdmissionPolicy(accept_horizon=10.0))
        ok = ctl.decide(
            request(0), 10.0, queue=[], queue_bounded=True, backpressure=False
        )
        late = ctl.decide(
            request(1), 10.1, queue=[], queue_bounded=True, backpressure=True
        )
        assert ok is None
        # Draining wins even over backpressure.
        assert late is ShedReason.DRAINING

    def test_backpressure_outranks_the_bucket(self):
        ctl = AdmissionController(AdmissionPolicy(rate=100.0))
        verdict = ctl.decide(
            request(0), 0.0, queue=[], queue_bounded=True, backpressure=True
        )
        assert verdict is ShedReason.BACKPRESSURE
        # The bucket was not charged for a backpressure shed.
        assert ctl.bucket.tokens == ctl.bucket.burst

    def test_rate_limit(self):
        ctl = AdmissionController(AdmissionPolicy(rate=0.001, burst=1.0))
        first = ctl.decide(
            request(0), 0.0, queue=[], queue_bounded=True, backpressure=False
        )
        second = ctl.decide(
            request(1), 0.0, queue=[], queue_bounded=True, backpressure=False
        )
        assert first is None
        assert second is ShedReason.RATE_LIMITED

    def test_queue_capacity_applies_only_in_batch_mode(self):
        ctl = AdmissionController(AdmissionPolicy(queue_capacity=1))
        queue = [request(0)]
        batch = ctl.decide(
            request(1), 0.0, queue=queue, queue_bounded=True, backpressure=False
        )
        immediate = ctl.decide(
            request(1), 0.0, queue=queue, queue_bounded=False, backpressure=False
        )
        assert batch is ShedReason.QUEUE_FULL
        assert immediate is None


class TestEviction:
    def test_no_priority_function_means_no_eviction(self):
        ctl = AdmissionController(AdmissionPolicy(queue_capacity=1))
        assert ctl.eviction_victim(request(5), [request(0)]) is None

    def test_strictly_higher_priority_evicts_the_lowest(self):
        policy = AdmissionPolicy(
            queue_capacity=2, priority_of=lambda r: float(r.index)
        )
        ctl = AdmissionController(policy)
        queue = [request(3), request(1), request(2)]
        victim = ctl.eviction_victim(request(9), queue)
        assert victim is queue[1]

    def test_equal_priority_keeps_the_incumbent(self):
        policy = AdmissionPolicy(queue_capacity=1, priority_of=lambda r: 1.0)
        ctl = AdmissionController(policy)
        assert ctl.eviction_victim(request(9), [request(0)]) is None

    def test_tie_breaks_on_youngest_arrival(self):
        policy = AdmissionPolicy(queue_capacity=2, priority_of=lambda r: 0.0)
        ctl = AdmissionController(policy)
        queue = [request(0, arrival=5.0), request(1, arrival=2.0)]
        victim = ctl.eviction_victim(request(9), queue)
        # Newcomer ties on priority, so nobody is evicted; but the *victim
        # selection* (used when the newcomer does win) prefers the youngest
        # arrival — it has the least waiting time invested.
        assert victim is None
        stronger = AdmissionPolicy(
            queue_capacity=2,
            priority_of=lambda r: 1.0 if r.index == 9 else 0.0,
        )
        victim = AdmissionController(stronger).eviction_victim(
            request(9), queue
        )
        assert victim is queue[0]
