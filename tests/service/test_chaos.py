"""Chaos smoke (satellite): machine outages, task crashes and a trust-plane
blackout all at once, under bounded admission and backpressure.  The service
must drain cleanly — every submitted request settles exactly once, nothing
deadlocks, and the trace lifecycle stays consistent."""

from __future__ import annotations

from repro.experiments.config import paper_policies
from repro.faults.model import (
    FaultModel,
    MachineFailureModel,
    TaskFailureModel,
)
from repro.faults.retry import RetryPolicy
from repro.obs.invariants import check_trace_lifecycle
from repro.obs.metrics import MetricsRegistry
from repro.service import AdmissionPolicy, ServiceConfig
from repro.service.admission import ShedReason
from repro.service.replay import replay_scenario
from repro.sim.trace import Tracer

CHAOS_FAULTS = FaultModel(
    tasks=TaskFailureModel(default_crash_prob=0.2),
    machines=MachineFailureModel(mtbf=2000.0, mttr=250.0),
)

KNOWN_REASONS = {reason.value for reason in ShedReason} | {
    "constraint-infeasible",
}


class TestChaosSmoke:
    def test_everything_at_once(self, table6_scenario):
        from repro.trustfaults.model import TrustFaultModel, TrustSourceFault

        sc = table6_scenario
        aware, _ = paper_policies()
        metrics = MetricsRegistry()
        tracer = Tracer()
        config = ServiceConfig(
            admission=AdmissionPolicy(queue_capacity=40, deadline=2400.0),
            backpressure_high=30,
            backpressure_low=10,
        )
        result = replay_scenario(
            sc,
            "min-min",
            aware,
            config=config,
            faults=CHAOS_FAULTS,
            fault_seed=11,
            retry=RetryPolicy(max_attempts=3, backoff_base=45.0),
            trust_faults=TrustFaultModel(
                table=TrustSourceFault(blackout=True)
            ),
            metrics=metrics,
            tracer=tracer,
        )

        total = len(sc.requests)
        schedule = result.schedule

        # Clean drain: the event loop terminated and every request settled
        # exactly once — completed, rejected at admission, or dropped.
        assert result.submitted == total
        assert (
            schedule.n_completed + schedule.n_rejected + schedule.n_dropped
            == total
        )
        post_admission = result.shed.get("deadline-expired", 0)
        assert result.admitted + result.shed_total - post_admission == total

        # No silent losses: every index is accounted for, none twice.
        completed = {r.request_index for r in schedule.records}
        rejected = set(schedule.rejected)
        dropped = set(schedule.dropped)
        assert completed | rejected | dropped == {
            r.index for r in sc.requests
        }
        assert not (completed & rejected)
        assert not (completed & dropped)
        assert not (rejected & dropped)

        # The chaos actually happened: faults fired and the blackout forced
        # degraded trust decisions, yet work still completed.
        assert len(schedule.failures) > 0
        assert schedule.n_completed > 0
        snapshot = metrics.snapshot()

        def count(name):
            return snapshot.get(name, {}).get("value", 0)

        assert count("trustq.queries") > 0
        assert (
            count("trustq.fast_fails")
            + count("trustq.timeouts")
            + count("trustq.stale")
        ) > 0

        # Every terminal reason is a known one.
        reasons = set(schedule.rejection_reasons.values())
        assert reasons <= KNOWN_REASONS

        # Lifecycle invariants hold through shedding, retries and downtime.
        violations = check_trace_lifecycle(
            tracer.entries(),
            completed=sorted(completed),
            rejected=schedule.rejected,
            dropped=schedule.dropped,
        )
        assert violations == []

    def test_chaos_with_rate_limit_still_drains(self, medium_scenario):
        sc = medium_scenario
        aware, _ = paper_policies()
        config = ServiceConfig(
            admission=AdmissionPolicy(rate=0.02, burst=4.0),
            backpressure_high=12,
        )
        result = replay_scenario(
            sc,
            "min-min",
            aware,
            config=config,
            faults=CHAOS_FAULTS,
            fault_seed=4,
            retry=RetryPolicy(max_attempts=2, backoff_base=30.0),
        )
        schedule = result.schedule
        total = len(sc.requests)
        assert result.submitted == total
        assert (
            schedule.n_completed + schedule.n_rejected + schedule.n_dropped
            == total
        )
        assert result.shed.get("shed-rate-limited", 0) > 0
