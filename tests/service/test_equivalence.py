"""The steady-state invariant: service ≡ batch scheduler, bit for bit.

With faults off and unlimited admission, the service's cumulative schedule
must be *bit-identical* to ``TRMScheduler.run`` on the same workload — the
service drives the shared engine through the exact event sequence of the
batch driver, so every mapped time, start time and realised cost matches
exactly (no tolerance).  This is the acceptance invariant of the service
plane, pinned here on the full Table-6 workload.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import PAPER_BATCH_INTERVAL, paper_policies
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    FaultModel,
    MachineFailureModel,
    TaskFailureModel,
)
from repro.faults.retry import RetryPolicy
from repro.scheduling import TRMScheduler, make_heuristic
from repro.service import AdmissionPolicy, GridService, ServiceConfig


def assert_bit_identical(service_result, batch_result):
    """Field-by-field equality of the two schedules (no tolerances)."""
    schedule = service_result.schedule
    assert schedule.records == batch_result.records
    assert schedule.rejected == batch_result.rejected
    assert schedule.rejection_reasons == batch_result.rejection_reasons
    assert schedule.dropped == batch_result.dropped
    assert schedule.failures == batch_result.failures
    for ours, theirs in zip(
        schedule.machine_states, batch_result.machine_states
    ):
        assert ours.available_time == theirs.available_time
        assert ours.busy_time == theirs.busy_time
        assert ours.assigned_count == theirs.assigned_count
        assert ours.failed_count == theirs.failed_count


class TestSteadyStateInvariant:
    def test_table6_min_min_bit_identical(self, table6_scenario):
        """The headline invariant, on the full Table-6 scenario."""
        sc = table6_scenario
        aware, _ = paper_policies()
        batch = TRMScheduler(
            sc.grid, sc.eec, aware, make_heuristic("min-min"),
            batch_interval=PAPER_BATCH_INTERVAL,
        ).run(sc.requests)
        service = GridService(
            TRMScheduler(
                sc.grid, sc.eec, aware, make_heuristic("min-min"),
                batch_interval=PAPER_BATCH_INTERVAL,
            )
        )
        result = service.serve(sc.requests)
        assert_bit_identical(result, batch)
        assert result.submitted == result.admitted == len(sc.requests)
        assert result.shed == {}

    def test_table6_trust_unaware_arm(self, table6_scenario):
        sc = table6_scenario
        _, unaware = paper_policies()
        batch = TRMScheduler(
            sc.grid, sc.eec, unaware, make_heuristic("min-min"),
            batch_interval=PAPER_BATCH_INTERVAL,
        ).run(sc.requests)
        result = GridService(
            TRMScheduler(
                sc.grid, sc.eec, unaware, make_heuristic("min-min"),
                batch_interval=PAPER_BATCH_INTERVAL,
            )
        ).serve(sc.requests)
        assert_bit_identical(result, batch)

    @pytest.mark.parametrize("heuristic", ["sufferage", "max-min"])
    def test_other_batch_heuristics(self, medium_scenario, heuristic):
        sc = medium_scenario
        aware, _ = paper_policies()
        batch = TRMScheduler(
            sc.grid, sc.eec, aware, make_heuristic(heuristic),
            batch_interval=PAPER_BATCH_INTERVAL,
        ).run(sc.requests)
        result = GridService(
            TRMScheduler(
                sc.grid, sc.eec, aware, make_heuristic(heuristic),
                batch_interval=PAPER_BATCH_INTERVAL,
            )
        ).serve(sc.requests)
        assert_bit_identical(result, batch)

    def test_immediate_heuristic(self, medium_scenario):
        """Immediate mode: the rolling window is pure housekeeping."""
        sc = medium_scenario
        aware, _ = paper_policies()
        batch = TRMScheduler(
            sc.grid, sc.eec, aware, make_heuristic("mct")
        ).run(sc.requests)
        result = GridService(
            TRMScheduler(sc.grid, sc.eec, aware, make_heuristic("mct"))
        ).serve(sc.requests)
        assert_bit_identical(result, batch)

    def test_unlimited_admission_under_faults(self, medium_scenario):
        """Fault recovery is engine behaviour — the service adds nothing."""
        sc = medium_scenario
        aware, _ = paper_policies()
        model = FaultModel(
            tasks=TaskFailureModel(default_crash_prob=0.15),
            machines=MachineFailureModel(mtbf=3000.0, mttr=300.0),
        )

        def scheduler():
            return TRMScheduler(
                sc.grid, sc.eec, aware, make_heuristic("min-min"),
                batch_interval=PAPER_BATCH_INTERVAL,
                faults=FaultInjector(model, rng=5),
                retry=RetryPolicy(backoff_base=20.0),
            )

        batch = scheduler().run(sc.requests)
        result = GridService(scheduler()).serve(sc.requests)
        assert_bit_identical(result, batch)
        assert len(result.schedule.failures) > 0

    def test_explicitly_unlimited_policy_is_the_default(self, medium_scenario):
        sc = medium_scenario
        aware, _ = paper_policies()
        config = ServiceConfig(admission=AdmissionPolicy.unlimited())
        default = GridService(
            TRMScheduler(
                sc.grid, sc.eec, aware, make_heuristic("min-min"),
                batch_interval=PAPER_BATCH_INTERVAL,
            )
        ).serve(sc.requests)
        explicit = GridService(
            TRMScheduler(
                sc.grid, sc.eec, aware, make_heuristic("min-min"),
                batch_interval=PAPER_BATCH_INTERVAL,
            ),
            config,
        ).serve(sc.requests)
        assert explicit.schedule.records == default.schedule.records
