"""Checkpoint/restore: schema validation, file round-trips, and the
kill-and-restore property — a crash at any window boundary recovers with
settled accounting identical to the uninterrupted run."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CheckpointError, ServiceKilled
from repro.experiments.config import PAPER_BATCH_INTERVAL, paper_policies
from repro.faults.injector import FaultInjector
from repro.faults.model import (
    FaultModel,
    MachineFailureModel,
    TaskFailureModel,
)
from repro.faults.retry import RetryPolicy
from repro.scheduling import TRMScheduler, make_heuristic
from repro.service import GridService
from repro.service.checkpoint import (
    CHECKPOINT_SCHEMA,
    load_checkpoint,
    save_checkpoint,
    validate_checkpoint,
)
from repro.trustfaults.model import TrustFaultModel, TrustSourceFault
from repro.trustfaults.query import ResilientTrustSource
from repro.workloads.scenario import ScenarioSpec, materialize

FAULTS = FaultModel(
    tasks=TaskFailureModel(default_crash_prob=0.15),
    machines=MachineFailureModel(mtbf=4000.0, mttr=400.0),
)


def build_service(scenario, *, blackout=False, metrics=None):
    """A deterministic faulted service; construct one per run/resume."""
    aware, _ = paper_policies()
    trust_source = (
        ResilientTrustSource.from_model(
            scenario.grid,
            TrustFaultModel(table=TrustSourceFault(blackout=True)),
            rng=2,
        )
        if blackout
        else None
    )
    scheduler = TRMScheduler(
        scenario.grid,
        scenario.eec,
        aware,
        make_heuristic("min-min"),
        batch_interval=PAPER_BATCH_INTERVAL,
        faults=FaultInjector(FAULTS, rng=3),
        retry=RetryPolicy(backoff_base=30.0),
        metrics=metrics,
        trust_source=trust_source,
    )
    return GridService(scheduler)


def assert_same_settlement(resumed, baseline):
    assert resumed.schedule.records == baseline.schedule.records
    assert resumed.schedule.rejected == baseline.schedule.rejected
    assert (
        resumed.schedule.rejection_reasons
        == baseline.schedule.rejection_reasons
    )
    assert resumed.schedule.dropped == baseline.schedule.dropped
    assert resumed.schedule.failures == baseline.schedule.failures
    for ours, theirs in zip(
        resumed.schedule.machine_states, baseline.schedule.machine_states
    ):
        assert ours.available_time == theirs.available_time
        assert ours.busy_time == theirs.busy_time


class TestValidation:
    def test_rejects_non_dicts_and_foreign_schemas(self):
        with pytest.raises(CheckpointError):
            validate_checkpoint([])
        with pytest.raises(CheckpointError):
            validate_checkpoint({"schema": "something/else"})

    def test_rejects_missing_keys(self):
        with pytest.raises(CheckpointError, match="missing keys"):
            validate_checkpoint({"schema": CHECKPOINT_SCHEMA})

    def test_rejects_time_travel(self, medium_scenario):
        payload = kill(medium_scenario, 1)
        payload["next_window"] = payload["clock"] - 1.0
        with pytest.raises(CheckpointError, match="precedes"):
            validate_checkpoint(payload)

    def test_rejects_malformed_records(self, medium_scenario):
        payload = kill(medium_scenario, 3)
        assert payload["records"], "need at least one settled record to mangle"
        (next(iter(payload["records"].values()))).pop("eec")
        with pytest.raises(CheckpointError, match="completion record"):
            validate_checkpoint(payload)


def kill(scenario, window, **kwargs):
    with pytest.raises(ServiceKilled) as exc:
        build_service(scenario, **kwargs).serve(
            scenario.requests, kill_after_window=window
        )
    return exc.value.checkpoint


class TestFileRoundTrip:
    def test_save_load(self, tmp_path, medium_scenario):
        payload = kill(medium_scenario, 1)
        path = save_checkpoint(payload, tmp_path / "svc.json")
        assert load_checkpoint(path) == json.loads(json.dumps(payload))

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.json")

    def test_corrupt_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(bad)


class TestKillAndRestore:
    def test_fixed_boundaries(self, medium_scenario):
        baseline = build_service(medium_scenario).serve(
            medium_scenario.requests
        )
        for window in (1, 2, 3):
            payload = json.loads(json.dumps(kill(medium_scenario, window)))
            resumed = build_service(medium_scenario).resume(
                payload, medium_scenario.requests
            )
            assert_same_settlement(resumed, baseline)

    def test_restore_through_trust_blackout(self, medium_scenario):
        baseline = build_service(medium_scenario, blackout=True).serve(
            medium_scenario.requests
        )
        payload = json.loads(
            json.dumps(kill(medium_scenario, 2, blackout=True))
        )
        assert "trust_plane" in payload
        resumed = build_service(medium_scenario, blackout=True).resume(
            payload, medium_scenario.requests
        )
        assert_same_settlement(resumed, baseline)

    def test_counters_resume(self, medium_scenario):
        baseline = build_service(medium_scenario).serve(
            medium_scenario.requests
        )
        payload = kill(medium_scenario, 2)
        resumed = build_service(medium_scenario).resume(
            payload, medium_scenario.requests
        )
        assert resumed.submitted == baseline.submitted
        assert resumed.admitted == baseline.admitted
        assert resumed.windows == baseline.windows


class TestResumeGuards:
    def test_heuristic_mismatch(self, medium_scenario):
        payload = kill(medium_scenario, 1)
        payload["heuristic"] = "sufferage"
        with pytest.raises(CheckpointError, match="heuristic"):
            build_service(medium_scenario).resume(
                payload, medium_scenario.requests
            )

    def test_trust_epoch_mismatch(self, medium_scenario):
        payload = kill(medium_scenario, 1)
        payload["trust_epoch"] = payload["trust_epoch"] + 1
        with pytest.raises(CheckpointError, match="trust table"):
            build_service(medium_scenario).resume(
                payload, medium_scenario.requests
            )

    def test_workload_mismatch(self, medium_scenario):
        payload = kill(medium_scenario, 1)
        with pytest.raises(CheckpointError, match="absent"):
            build_service(medium_scenario).resume(
                payload, medium_scenario.requests[:1]
            )

    def test_trust_plane_presence_must_match(self, medium_scenario):
        payload = kill(medium_scenario, 1)
        with pytest.raises(CheckpointError, match="trust-plane"):
            build_service(medium_scenario, blackout=True).resume(
                payload, medium_scenario.requests
            )

    def test_random_outage_process_is_not_checkpointable(
        self, medium_scenario
    ):
        aware, _ = paper_policies()
        trust_source = ResilientTrustSource.from_model(
            medium_scenario.grid,
            TrustFaultModel(
                table=TrustSourceFault(outage_mtbf=500.0, outage_mttr=50.0)
            ),
            rng=2,
        )
        scheduler = TRMScheduler(
            medium_scenario.grid,
            medium_scenario.eec,
            aware,
            make_heuristic("min-min"),
            batch_interval=PAPER_BATCH_INTERVAL,
            trust_source=trust_source,
        )
        service = GridService(scheduler)
        with pytest.raises(CheckpointError, match="outage"):
            service.serve(
                medium_scenario.requests, kill_after_window=1
            )


class TestKillAndRestoreProperty:
    """Satellite 3: the round-trip holds at *random* window boundaries."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=6),
        window=st.integers(min_value=1, max_value=4),
    )
    def test_random_boundary_recovers_exactly(self, seed, window):
        spec = ScenarioSpec(n_tasks=30, n_machines=4, target_load=3.0)
        scenario = materialize(spec, seed=seed)
        baseline = build_service(scenario).serve(scenario.requests)
        try:
            payload = kill(scenario, window)
        except pytest.fail.Exception:
            # The run drained before the kill window — nothing to restore,
            # which is itself a pass (the service just finished).
            return
        payload = json.loads(json.dumps(payload))
        resumed = build_service(scenario).resume(payload, scenario.requests)
        assert_same_settlement(resumed, baseline)


class TestTrustStoreSidecar:
    """The optional zero-copy trust-store reference pinned by digest."""

    def _snapshot(self, tmp_path):
        from repro.core import TrustTable, snapshot_trust_store
        from repro.core.context import EXECUTION

        table = TrustTable()
        table.record("cd:0", "rd:0", EXECUTION, 0.7, 10.0)
        table.record("cd:1", "rd:0", EXECUTION, 0.4, 20.0)
        return snapshot_trust_store(tmp_path / "trust", table)

    def test_attach_and_resolve_round_trip(self, tmp_path, medium_scenario):
        from repro.service.checkpoint import attach_trust_store, resolve_trust_store

        manifest = self._snapshot(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_store(payload, manifest)
        validate_checkpoint(payload)
        path = save_checkpoint(payload, tmp_path / "svc.json")
        loaded = load_checkpoint(path)
        assert resolve_trust_store(loaded) == manifest.parent

    def test_resolve_without_sidecar_is_none(self, medium_scenario):
        from repro.service.checkpoint import resolve_trust_store

        assert resolve_trust_store(kill(medium_scenario, 1)) is None

    def test_tampered_manifest_is_refused(self, tmp_path, medium_scenario):
        from repro.service.checkpoint import attach_trust_store, resolve_trust_store

        manifest = self._snapshot(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_store(payload, manifest)
        manifest.write_text(manifest.read_text() + "\n")
        with pytest.raises(CheckpointError, match="digest"):
            resolve_trust_store(payload)

    def test_missing_manifest_is_refused(self, tmp_path, medium_scenario):
        from repro.service.checkpoint import attach_trust_store, resolve_trust_store

        manifest = self._snapshot(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_store(payload, manifest)
        manifest.unlink()
        with pytest.raises(CheckpointError, match="missing"):
            resolve_trust_store(payload)

    def test_attach_requires_existing_manifest(self, tmp_path, medium_scenario):
        from repro.service.checkpoint import attach_trust_store

        payload = kill(medium_scenario, 1)
        with pytest.raises(CheckpointError, match="does not exist"):
            attach_trust_store(payload, tmp_path / "absent" / "manifest.json")

    def test_malformed_sidecar_is_rejected(self, medium_scenario):
        payload = kill(medium_scenario, 1)
        payload["trust_store"] = {"schema": "repro.trust.store/v1"}
        with pytest.raises(CheckpointError, match="sidecar"):
            validate_checkpoint(payload)

    def test_restore_from_sidecar_recovers_the_plane(self, tmp_path, medium_scenario):
        from repro.core import restore_trust_store
        from repro.core.context import EXECUTION
        from repro.service.checkpoint import attach_trust_store, resolve_trust_store

        manifest = self._snapshot(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_store(payload, manifest)
        payload = json.loads(json.dumps(payload))  # file round-trip shape
        directory = resolve_trust_store(payload)
        restored = restore_trust_store(directory)
        record = restored.table.get("cd:0", "rd:0", EXECUTION)
        assert record is not None and record.value == 0.7


class TestTrustJournalSidecar:
    """Delta checkpoints: the ``trust_journal`` sidecar pins a durable
    trust plane by root, generation, base digest, and journal offset."""

    def _plane(self, tmp_path):
        from repro.core import DurableTrustPlane, TrustTable
        from repro.core.context import EXECUTION
        from repro.core.recommender import RecommenderWeights

        table = TrustTable()
        plane = DurableTrustPlane.create(
            tmp_path / "plane", table, RecommenderWeights()
        )
        table.record("cd:0", "rd:0", EXECUTION, 0.7, 10.0)
        table.record("cd:1", "rd:0", EXECUTION, 0.4, 20.0)
        return plane

    def test_attach_resolve_round_trip(self, tmp_path, medium_scenario):
        from repro.core.context import EXECUTION
        from repro.service.checkpoint import (
            attach_trust_journal,
            resolve_trust_journal,
        )

        plane = self._plane(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_journal(payload, plane)
        validate_checkpoint(payload)
        plane.close()
        path = save_checkpoint(payload, tmp_path / "svc.json")
        loaded = load_checkpoint(path)
        recovered = resolve_trust_journal(loaded)
        assert recovered is not None
        record = recovered.table.get("cd:0", "rd:0", EXECUTION)
        assert record is not None and record.value == 0.7
        recovered.close()

    def test_resolve_without_sidecar_is_none(self, medium_scenario):
        from repro.service.checkpoint import resolve_trust_journal

        assert resolve_trust_journal(kill(medium_scenario, 1)) is None

    def test_unacknowledged_tail_is_rolled_back(self, tmp_path, medium_scenario):
        from repro.core.context import EXECUTION
        from repro.service.checkpoint import (
            attach_trust_journal,
            resolve_trust_journal,
        )

        plane = self._plane(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_journal(payload, plane)
        # Writes after the acknowledged checkpoint belong to a timeline
        # the service is about to re-execute: resolve discards them.
        plane.table.record("cd:2", "rd:1", EXECUTION, 0.9, 30.0)
        plane.checkpoint()
        plane.close()
        recovered = resolve_trust_journal(json.loads(json.dumps(payload)))
        assert recovered.table.get("cd:2", "rd:1", EXECUTION) is None
        assert recovered.table.get("cd:0", "rd:0", EXECUTION).value == 0.7
        recovered.close()

    def test_pinned_generation_survives_compaction(self, tmp_path, medium_scenario):
        from repro.core.context import EXECUTION
        from repro.service.checkpoint import (
            attach_trust_journal,
            resolve_trust_journal,
        )

        plane = self._plane(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_journal(payload, plane)
        plane.table.record("cd:2", "rd:1", EXECUTION, 0.9, 30.0)
        plane.checkpoint()
        plane.compact()  # folds the tail into a new base generation
        plane.close()
        recovered = resolve_trust_journal(json.loads(json.dumps(payload)))
        assert recovered.generation == payload["trust_journal"]["generation"]
        assert recovered.table.get("cd:2", "rd:1", EXECUTION) is None
        recovered.close()

    def test_torn_pinned_prefix_is_refused(self, tmp_path, medium_scenario):
        from repro.service.checkpoint import (
            attach_trust_journal,
            resolve_trust_journal,
        )

        plane = self._plane(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_journal(payload, plane)
        plane.close()
        journal = tmp_path / "plane" / "journal-0.wal"
        data = bytearray(journal.read_bytes())
        data[-1] ^= 0xFF  # tear inside the acknowledged prefix
        journal.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="pinned"):
            resolve_trust_journal(payload)

    def test_malformed_sidecar_is_rejected(self, medium_scenario):
        from repro.core.journal import JOURNAL_SCHEMA

        payload = kill(medium_scenario, 1)
        payload["trust_journal"] = {"schema": JOURNAL_SCHEMA}
        with pytest.raises(CheckpointError, match="sidecar"):
            validate_checkpoint(payload)

    def test_service_checkpoint_embeds_sidecar(self, tmp_path, medium_scenario):
        plane = self._plane(tmp_path)
        service = build_service(medium_scenario)
        service.trust_plane = plane
        with pytest.raises(ServiceKilled) as exc:
            service.serve(medium_scenario.requests, kill_after_window=1)
        payload = exc.value.checkpoint
        validate_checkpoint(payload)
        sidecar = payload["trust_journal"]
        assert sidecar["offset"] == plane.journal_offset
        assert sidecar["base_sha256"] == plane.base_digest
        plane.close()

    def test_resume_refuses_sidecar_without_plane(self, tmp_path, medium_scenario):
        from repro.service.checkpoint import attach_trust_journal

        plane = self._plane(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_journal(payload, plane)
        plane.close()
        with pytest.raises(CheckpointError, match="resolve_trust_journal"):
            build_service(medium_scenario).resume(
                payload, medium_scenario.requests
            )

    def test_resume_refuses_plane_without_sidecar(self, tmp_path, medium_scenario):
        plane = self._plane(tmp_path)
        payload = kill(medium_scenario, 1)
        service = build_service(medium_scenario)
        service.trust_plane = plane
        with pytest.raises(CheckpointError, match="unpinned"):
            service.resume(payload, medium_scenario.requests)
        plane.close()

    def test_resume_with_resolved_plane_round_trips(self, tmp_path, medium_scenario):
        from repro.service.checkpoint import (
            attach_trust_journal,
            resolve_trust_journal,
        )

        plane = self._plane(tmp_path)
        payload = kill(medium_scenario, 1)
        attach_trust_journal(payload, plane)
        plane.close()
        payload = json.loads(json.dumps(payload))
        recovered = resolve_trust_journal(payload)
        service = build_service(medium_scenario)
        service.trust_plane = recovered
        resumed = service.resume(payload, medium_scenario.requests)
        baseline = build_service(medium_scenario).serve(
            medium_scenario.requests
        )
        assert_same_settlement(resumed, baseline)
        recovered.close()
