"""Behavioural tests for the always-on service: shedding, backpressure,
deadlines, watchdog, metrics, and lifecycle invariants."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ServiceError, ServiceStalled
from repro.experiments.config import PAPER_BATCH_INTERVAL, paper_policies
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultModel, TaskFailureModel
from repro.faults.retry import RetryPolicy
from repro.obs.invariants import check_trace_lifecycle
from repro.obs.metrics import MetricsRegistry
from repro.scheduling import TRMScheduler, make_heuristic
from repro.service import (
    AdmissionPolicy,
    GridService,
    ServiceConfig,
    ServiceResult,
    WatchdogConfig,
)
from repro.sim.trace import Tracer


def make_service(
    scenario,
    config=None,
    *,
    heuristic="min-min",
    metrics=None,
    tracer=None,
    faults=None,
    retry=None,
):
    aware, _ = paper_policies()
    interval = (
        PAPER_BATCH_INTERVAL if heuristic in ("min-min", "max-min", "sufferage")
        else None
    )
    scheduler = TRMScheduler(
        scenario.grid,
        scenario.eec,
        aware,
        make_heuristic(heuristic),
        batch_interval=interval,
        metrics=metrics,
        tracer=tracer,
        faults=faults,
        retry=retry,
    )
    return GridService(scheduler, config)


def assert_settled_exactly_once(result: ServiceResult, total: int) -> None:
    schedule = result.schedule
    assert result.submitted == total
    assert (
        schedule.n_completed + schedule.n_rejected + schedule.n_dropped
        == total
    )
    # Deadline expiries and priority evictions hit *after* admission, so
    # they don't count against the ingress split.
    post_admission = result.shed.get("deadline-expired", 0) + result.shed.get(
        "shed-priority", 0
    )
    ingress_shed = result.shed_total - post_admission
    assert result.admitted + ingress_shed == total


class TestConfigValidation:
    def test_window_interval_positive(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(window_interval=0.0)

    def test_backpressure_low_needs_high(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(backpressure_low=2)

    def test_watchdog_validation(self):
        with pytest.raises(ConfigurationError):
            WatchdogConfig(window_wall_budget_s=0.0)
        with pytest.raises(ConfigurationError):
            WatchdogConfig(stall_window_limit=0)

    def test_kill_and_checkpoint_knobs_validated(self, medium_scenario):
        with pytest.raises(ConfigurationError):
            make_service(medium_scenario).serve(
                medium_scenario.requests, kill_after_window=0
            )
        with pytest.raises(ConfigurationError):
            make_service(medium_scenario).serve(
                medium_scenario.requests, checkpoint_every=0
            )


class TestSingleShot:
    def test_second_serve_refused(self, medium_scenario):
        service = make_service(medium_scenario)
        service.serve(medium_scenario.requests)
        with pytest.raises(ServiceError):
            service.serve(medium_scenario.requests)


class TestShedding:
    def test_queue_capacity(self, medium_scenario):
        config = ServiceConfig(admission=AdmissionPolicy(queue_capacity=5))
        result = make_service(medium_scenario, config).serve(
            medium_scenario.requests
        )
        total = len(medium_scenario.requests)
        assert_settled_exactly_once(result, total)
        assert result.shed.get("shed-queue-full", 0) > 0
        reasons = set(result.schedule.rejection_reasons.values())
        assert "shed-queue-full" in reasons

    def test_rate_limit(self, medium_scenario):
        config = ServiceConfig(
            admission=AdmissionPolicy(rate=0.001, burst=2.0)
        )
        result = make_service(medium_scenario, config).serve(
            medium_scenario.requests
        )
        assert_settled_exactly_once(result, len(medium_scenario.requests))
        assert result.shed.get("shed-rate-limited", 0) > 0
        # The burst was honoured before the limiter kicked in.
        assert result.admitted >= 2

    def test_deadline_expiry(self, medium_scenario):
        # Everything queued longer than 60 s sheds at the window boundary;
        # with a 600 s window, requests arriving early in the period expire.
        config = ServiceConfig(admission=AdmissionPolicy(deadline=60.0))
        result = make_service(medium_scenario, config).serve(
            medium_scenario.requests
        )
        assert_settled_exactly_once(result, len(medium_scenario.requests))
        assert result.shed.get("deadline-expired", 0) > 0

    def test_accept_horizon_drains(self, medium_scenario):
        config = ServiceConfig(
            admission=AdmissionPolicy(accept_horizon=0.0)
        )
        result = make_service(medium_scenario, config).serve(
            medium_scenario.requests
        )
        total = len(medium_scenario.requests)
        assert_settled_exactly_once(result, total)
        late = [r for r in medium_scenario.requests if r.arrival_time > 0.0]
        assert result.shed.get("shed-draining", 0) == len(late)

    def test_priority_eviction(self, medium_scenario):
        # Higher request index = higher priority; with a tiny queue, later
        # arrivals evict earlier ones.
        config = ServiceConfig(
            admission=AdmissionPolicy(
                queue_capacity=3, priority_of=lambda r: float(r.index)
            )
        )
        result = make_service(medium_scenario, config).serve(
            medium_scenario.requests
        )
        assert_settled_exactly_once(result, len(medium_scenario.requests))
        assert result.shed.get("shed-priority", 0) > 0
        # The evicted requests are the *low*-priority (low-index) ones.
        evicted = [
            idx
            for idx, reason in result.schedule.rejection_reasons.items()
            if reason == "shed-priority"
        ]
        completed = {r.request_index for r in result.schedule.records}
        assert max(evicted) < max(completed)


class TestBackpressure:
    def test_latch_engages_and_releases(self, table6_scenario):
        config = ServiceConfig(backpressure_high=10, backpressure_low=2)
        result = make_service(table6_scenario, config).serve(
            table6_scenario.requests
        )
        assert_settled_exactly_once(result, len(table6_scenario.requests))
        assert result.backpressure_engagements > 0
        assert result.shed.get("shed-backpressure", 0) > 0
        # The latch must not stay stuck: the drain releases it.
        assert result.backpressure_releases == result.backpressure_engagements


class TestWatchdog:
    def fault_service(self, scenario, watchdog):
        # One doomed request chain: crashes keep the backlog alive across
        # many windows thanks to an enormous retry backoff.
        # Crash probability must stay < 1.0; this close to certainty, no
        # attempt ever succeeds under the fixed seed.
        model = FaultModel(
            tasks=TaskFailureModel(default_crash_prob=1.0 - 1e-9)
        )
        return make_service(
            scenario,
            ServiceConfig(watchdog=watchdog),
            faults=FaultInjector(model, rng=1),
            retry=RetryPolicy(
                max_attempts=3, backoff_base=5 * PAPER_BATCH_INTERVAL
            ),
        )

    def test_stall_is_counted(self, medium_scenario):
        service = self.fault_service(
            medium_scenario, WatchdogConfig(stall_window_limit=3)
        )
        result = service.serve(medium_scenario.requests)
        assert result.watchdog_trips > 0
        # Counting mode still drains to completion.
        assert_settled_exactly_once(result, len(medium_scenario.requests))
        assert result.schedule.n_dropped == len(medium_scenario.requests)

    def test_fail_fast_raises(self, medium_scenario):
        service = self.fault_service(
            medium_scenario,
            WatchdogConfig(stall_window_limit=3, fail_fast=True),
        )
        with pytest.raises(ServiceStalled):
            service.serve(medium_scenario.requests)


class TestObservability:
    def test_svc_metrics_emitted(self, medium_scenario):
        metrics = MetricsRegistry()
        config = ServiceConfig(admission=AdmissionPolicy(queue_capacity=5))
        make_service(medium_scenario, config, metrics=metrics).serve(
            medium_scenario.requests
        )
        snapshot = metrics.snapshot()
        names = set(snapshot)
        assert "svc.submitted" in names
        assert "svc.admitted" in names
        assert "svc.shed" in names
        assert "svc.shed.shed-queue-full" in names
        assert "svc.windows" in names
        assert "svc.window_mapped" in names
        assert "svc.backlog" in names
        assert "svc.decision_latency_s" in names

    def test_trace_lifecycle_under_shedding(self, medium_scenario):
        tracer = Tracer()
        config = ServiceConfig(
            admission=AdmissionPolicy(queue_capacity=4, deadline=120.0)
        )
        result = make_service(medium_scenario, config, tracer=tracer).serve(
            medium_scenario.requests
        )
        violations = check_trace_lifecycle(
            tracer.entries(),
            completed=[r.request_index for r in result.schedule.records],
            rejected=result.schedule.rejected,
            dropped=result.schedule.dropped,
        )
        assert violations == []

    def test_summary_carries_service_section(self, medium_scenario):
        result = make_service(medium_scenario).serve(
            medium_scenario.requests
        )
        summary = result.summary()
        assert summary["service"]["submitted"] == len(
            medium_scenario.requests
        )
        assert summary["service"]["windows"] == result.windows
