"""Tests for the scheduler→ingestion backpressure latch."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.backpressure import BackpressureLatch


class TestBackpressureLatch:
    def test_validations(self):
        with pytest.raises(ConfigurationError):
            BackpressureLatch(0)
        with pytest.raises(ConfigurationError):
            BackpressureLatch(10, low=10)
        with pytest.raises(ConfigurationError):
            BackpressureLatch(10, low=-1)

    def test_low_defaults_to_half_of_high(self):
        assert BackpressureLatch(10).low == 5
        assert BackpressureLatch(1).low == 0

    def test_hysteresis(self):
        latch = BackpressureLatch(4, low=1)
        assert not latch.update(3)
        assert latch.update(4)
        assert latch.engaged
        # Draining below high but above low keeps the latch engaged.
        assert not latch.update(2)
        assert latch.engaged
        assert latch.update(1)
        assert not latch.engaged
        assert latch.engagements == 1
        assert latch.releases == 1

    def test_state_round_trip(self):
        latch = BackpressureLatch(4)
        latch.update(4)
        latch.update(0)
        latch.update(9)
        clone = BackpressureLatch(4)
        clone.restore(latch.state_dict())
        assert clone.engaged
        assert clone.engagements == 2
        assert clone.releases == 1
