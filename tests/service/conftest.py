"""Shared fixtures for the service-plane tests."""

from __future__ import annotations

import pytest

from repro.experiments.config import paper_spec
from repro.workloads.eec import Consistency
from repro.workloads.scenario import ScenarioSpec, materialize


@pytest.fixture(scope="module")
def table6_scenario():
    """The full Table-6 workload: min-min's inconsistent LoLo, 100 tasks."""
    return materialize(paper_spec(100, Consistency.INCONSISTENT), seed=42)


@pytest.fixture(scope="module")
def medium_scenario():
    """A mid-size scenario for fault/recovery tests (40 tasks, 4 machines)."""
    spec = ScenarioSpec(n_tasks=40, n_machines=4, target_load=3.0)
    return materialize(spec, seed=9)
