"""Smoke tests: every example script runs end to end.

Examples are the adoption surface; a broken example is a broken deliverable
even when the library tests pass.  Each script is executed in a fresh
interpreter (as a user would run it) with small arguments where supported.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "2")
        assert "improvement" in out
        assert "trust-aware" in out

    def test_trust_evolution(self):
        out = run_example("trust_evolution.py")
        assert "learned:" in out
        assert "newcomer" in out

    def test_security_overhead_study(self):
        out = run_example("security_overhead_study.py")
        assert "100 Mbps network" in out
        assert "MiSFIT" in out
        assert "least-squares" in out

    def test_custom_heuristic(self):
        out = run_example("custom_heuristic.py")
        assert "trust-first-mct" in out

    def test_admission_control(self):
        out = run_example("admission_control.py")
        assert "reject" in out
        assert "supplemental security plan" in out

    def test_heuristic_comparison_small(self):
        out = run_example("heuristic_comparison.py", "2")
        assert "best trust-aware heuristic" in out

    def test_fault_tolerance(self):
        out = run_example("fault_tolerance.py", "1")
        assert "One faulty run" in out
        assert "Recovery policies" in out
        assert "goodput gain" in out

    def test_profiling(self, tmp_path):
        out = run_example("profiling.py", "1", str(tmp_path / "artifacts"))
        assert "run: minmin-demo" in out
        assert "mapping latency" in out
        assert "manifest" in out
        assert (tmp_path / "artifacts" / "manifest.json").exists()
        assert (tmp_path / "artifacts" / "trace.jsonl").exists()
