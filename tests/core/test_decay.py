"""Tests for repro.core.decay."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decay import (
    ExponentialDecay,
    HalfLifeDecay,
    LinearDecay,
    NoDecay,
    StepDecay,
)

ages = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)

ALL_DECAYS = [
    NoDecay(),
    ExponentialDecay(rate=0.01),
    ExponentialDecay(rate=0.5, floor=0.2),
    LinearDecay(horizon=100.0),
    LinearDecay(horizon=10.0, floor=0.1),
    StepDecay(fresh_for=50.0, stale_value=0.3),
    HalfLifeDecay(half_life=20.0),
]


@pytest.mark.parametrize("decay", ALL_DECAYS, ids=lambda d: type(d).__name__)
class TestDecayProtocol:
    def test_fresh_information_full_credibility(self, decay):
        assert decay(0.0) == pytest.approx(1.0)

    def test_range(self, decay):
        for age in [0.0, 1.0, 10.0, 1e3, 1e9]:
            assert 0.0 <= decay(age) <= 1.0

    def test_non_increasing(self, decay):
        samples = [decay(a) for a in np.linspace(0, 500, 50)]
        assert all(a >= b - 1e-12 for a, b in zip(samples, samples[1:]))

    def test_negative_age_rejected(self, decay):
        with pytest.raises(ValueError):
            decay(-1.0)

    def test_vectorised_matches_scalar(self, decay):
        ages = np.array([0.0, 3.5, 42.0, 1e4])
        np.testing.assert_allclose(
            decay.apply(ages), [decay(a) for a in ages], rtol=1e-12
        )

    def test_vectorised_rejects_negative(self, decay):
        with pytest.raises(ValueError):
            decay.apply(np.array([1.0, -0.5]))


@pytest.mark.parametrize("decay", ALL_DECAYS, ids=lambda d: type(d).__name__)
@given(age=ages)
def test_scalar_call_is_single_element_apply(decay, age):
    """``__call__`` must be *bit-identical* to a one-element ``apply``.

    The scalar Γ path and the batched kernels share ``apply`` precisely so
    they agree to the last ulp (``math.exp`` and ``np.exp`` differ); exact
    equality here is the contract the equivalence suite builds on.
    """
    assert decay(age) == decay.apply(np.asarray([age], dtype=np.float64))[0]


class TestSpecifics:
    def test_exponential_floor_is_asymptote(self):
        d = ExponentialDecay(rate=1.0, floor=0.25)
        assert d(1e9) == pytest.approx(0.25)

    def test_linear_reaches_floor_at_horizon(self):
        d = LinearDecay(horizon=10.0, floor=0.4)
        assert d(10.0) == pytest.approx(0.4)
        assert d(50.0) == pytest.approx(0.4)

    def test_linear_midpoint(self):
        d = LinearDecay(horizon=10.0)
        assert d(5.0) == pytest.approx(0.5)

    def test_step_boundary_inclusive(self):
        d = StepDecay(fresh_for=5.0, stale_value=0.2)
        assert d(5.0) == 1.0
        assert d(5.0001) == 0.2

    def test_half_life(self):
        d = HalfLifeDecay(half_life=7.0)
        assert d(7.0) == pytest.approx(0.5)
        assert d.half_life == pytest.approx(7.0)

    @given(ages)
    def test_no_decay_everywhere_one(self, age):
        assert NoDecay()(age) == 1.0


class TestValidation:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ExponentialDecay(rate=-1.0),
            lambda: ExponentialDecay(rate=1.0, floor=1.5),
            lambda: LinearDecay(horizon=0.0),
            lambda: LinearDecay(horizon=1.0, floor=-0.1),
            lambda: StepDecay(fresh_for=-1.0),
            lambda: StepDecay(fresh_for=1.0, stale_value=2.0),
            lambda: HalfLifeDecay(half_life=0.0),
        ],
    )
    def test_bad_parameters_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()
