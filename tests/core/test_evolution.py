"""Tests for repro.core.evolution and repro.core.update."""

import pytest

from repro.core.context import EXECUTION
from repro.core.evolution import TransactionOutcome, TrustEvolver
from repro.core.levels import TrustLevel
from repro.core.tables import TrustRecord, TrustTable
from repro.core.update import AlwaysPublish, HysteresisPolicy, MinEvidencePolicy


def outcome(satisfaction: float, time: float) -> TransactionOutcome:
    return TransactionOutcome(
        truster="x", trustee="y", context=EXECUTION, satisfaction=satisfaction, time=time
    )


class TestTransactionOutcome:
    def test_satisfaction_bounds(self):
        with pytest.raises(ValueError):
            outcome(1.5, 0.0)
        with pytest.raises(ValueError):
            outcome(-0.1, 0.0)

    def test_self_transaction_rejected(self):
        with pytest.raises(ValueError):
            TransactionOutcome("x", "x", EXECUTION, 0.5, 0.0)


class TestTrustEvolver:
    def test_first_outcome_taken_verbatim(self):
        evolver = TrustEvolver(table=TrustTable(), smoothing=0.3)
        rec = evolver.observe(outcome(0.8, 1.0))
        assert rec.value == pytest.approx(0.8)
        assert rec.transaction_count == 1

    def test_first_outcome_blended_with_initial_value(self):
        evolver = TrustEvolver(table=TrustTable(), smoothing=0.5, initial_value=0.0)
        rec = evolver.observe(outcome(1.0, 1.0))
        assert rec.value == pytest.approx(0.5)

    def test_ema_update(self):
        evolver = TrustEvolver(table=TrustTable(), smoothing=0.5)
        evolver.observe(outcome(1.0, 1.0))
        rec = evolver.observe(outcome(0.0, 2.0))
        assert rec.value == pytest.approx(0.5)
        assert rec.transaction_count == 2

    def test_good_behaviour_raises_trust_monotonically(self):
        evolver = TrustEvolver(table=TrustTable(), smoothing=0.3)
        evolver.observe(outcome(0.2, 0.0))
        values = []
        for t in range(1, 20):
            values.append(evolver.observe(outcome(1.0, float(t))).value)
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] > 0.9

    def test_out_of_order_outcomes_rejected(self):
        evolver = TrustEvolver(table=TrustTable())
        evolver.observe(outcome(0.5, 10.0))
        with pytest.raises(ValueError, match="time order"):
            evolver.observe(outcome(0.5, 9.0))

    def test_score_recommendations_updates_weights(self):
        evolver = TrustEvolver(table=TrustTable())
        updated = evolver.score_recommendations(
            outcome(1.0, 1.0), {"good": 1.0, "bad": 0.0, "x": 0.5}
        )
        assert set(updated) == {"good", "bad"}  # the truster itself is skipped
        assert updated["good"] > updated["bad"]

    @pytest.mark.parametrize("smoothing", [0.0, 1.5])
    def test_bad_smoothing_rejected(self, smoothing):
        with pytest.raises(ValueError):
            TrustEvolver(table=TrustTable(), smoothing=smoothing)


class TestPublicationPolicies:
    def rec(self, value: float, count: int) -> TrustRecord:
        return TrustRecord(value=value, last_transaction=0.0, transaction_count=count)

    def test_always_publish_on_change(self):
        policy = AlwaysPublish()
        assert policy.should_publish(self.rec(0.9, 1), TrustLevel.A)
        assert not policy.should_publish(self.rec(0.05, 1), TrustLevel.A)
        assert policy.should_publish(self.rec(0.05, 1), None)

    def test_min_evidence_blocks_early_publication(self):
        policy = MinEvidencePolicy(min_transactions=5)
        assert not policy.should_publish(self.rec(0.9, 4), TrustLevel.A)
        assert policy.should_publish(self.rec(0.9, 5), TrustLevel.A)

    def test_min_evidence_no_publish_without_change(self):
        policy = MinEvidencePolicy(min_transactions=1)
        assert not policy.should_publish(self.rec(0.05, 10), TrustLevel.A)

    def test_hysteresis_needs_level_jump(self):
        policy = HysteresisPolicy(min_level_delta=2)
        # value 0.25 -> level B; published A: delta 1 < 2.
        assert not policy.should_publish(self.rec(0.25, 1), TrustLevel.A)
        # value 0.45 -> level C; delta 2 >= 2.
        assert policy.should_publish(self.rec(0.45, 1), TrustLevel.A)

    def test_hysteresis_publishes_first_value(self):
        assert HysteresisPolicy().should_publish(self.rec(0.5, 1), None)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: MinEvidencePolicy(min_transactions=0),
            lambda: HysteresisPolicy(min_level_delta=0),
            lambda: HysteresisPolicy(min_transactions=0),
        ],
    )
    def test_bad_policy_parameters(self, factory):
        with pytest.raises(ValueError):
            factory()
