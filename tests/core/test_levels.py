"""Tests for repro.core.levels."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.levels import (
    MAX_LEVEL,
    MAX_OFFERED_LEVEL,
    MIN_LEVEL,
    TrustLevel,
    offered_levels,
    required_levels,
)


class TestTrustLevel:
    def test_numeric_values_match_paper(self):
        assert [int(l) for l in TrustLevel] == [1, 2, 3, 4, 5, 6]

    def test_ordering(self):
        assert TrustLevel.A < TrustLevel.B < TrustLevel.F

    def test_subtraction_gives_level_distance(self):
        assert TrustLevel.D - TrustLevel.B == 2

    def test_from_value_accepts_level(self):
        assert TrustLevel.from_value(TrustLevel.C) is TrustLevel.C

    @pytest.mark.parametrize("raw,expected", [(1, TrustLevel.A), (6, TrustLevel.F)])
    def test_from_value_accepts_int(self, raw, expected):
        assert TrustLevel.from_value(raw) is expected

    @pytest.mark.parametrize("raw", ["a", "A", " f ", "B"])
    def test_from_value_accepts_strings_case_insensitively(self, raw):
        assert TrustLevel.from_value(raw).name == raw.strip().upper()

    @pytest.mark.parametrize("raw", [0, 7, -1, "G", "", "AA", None, 2.5])
    def test_from_value_rejects_garbage(self, raw):
        with pytest.raises(ValueError):
            TrustLevel.from_value(raw)

    def test_f_is_not_offerable(self):
        assert not TrustLevel.F.is_offerable
        assert all(l.is_offerable for l in TrustLevel if l is not TrustLevel.F)

    def test_str_is_letter(self):
        assert str(TrustLevel.E) == "E"


class TestLevelRanges:
    def test_bounds(self):
        assert MIN_LEVEL is TrustLevel.A
        assert MAX_LEVEL is TrustLevel.F
        assert MAX_OFFERED_LEVEL is TrustLevel.E

    def test_offered_levels_exclude_f(self):
        assert list(offered_levels()) == [
            TrustLevel.A,
            TrustLevel.B,
            TrustLevel.C,
            TrustLevel.D,
            TrustLevel.E,
        ]

    def test_required_levels_include_all(self):
        assert list(required_levels()) == list(TrustLevel)

    @given(st.integers(min_value=1, max_value=6))
    def test_roundtrip_int(self, v):
        assert int(TrustLevel.from_value(v)) == v
