"""Edge semantics of Ω, pinned on the scalar *and* batched paths.

Three behaviours the batched kernel must reproduce exactly:

* every source rejected by ``source_filter`` -> the unknown prior, not an
  average over nothing;
* ``R = 0`` recommenders leave the divisor too (a purged badmouther must
  not drag its target toward zero);
* an opinion recorded in the future raises, and is never silently masked —
  unless it belongs to the asker, whose opinion is excluded before the age
  check.
"""

import numpy as np
import pytest

from repro.core.context import TrustContext
from repro.core.reputation import Reputation
from repro.core.tables import TrustTable
from repro.trustfaults.credibility import CredibilityWeights

CTX = TrustContext("toa")
NOW = 100.0


def _table() -> TrustTable:
    table = TrustTable()
    table.record("a", "y", CTX, 0.8, 10.0)
    table.record("b", "y", CTX, 0.4, 20.0)
    return table


def _purging_weights(*victims: str) -> CredibilityWeights:
    """Weights where each victim has been observed into a purge (R = 0)."""
    weights = CredibilityWeights(
        purge_threshold=0.9, min_observations=1, learning_rate=1.0
    )
    for victim in victims:
        weights.observe_outcome(victim, 1.0, 0.0)
    return weights


def _both(rep: Reputation, trustee: str = "y", asking: str = "q"):
    """(scalar, batched) Ω for one trustee, for exact comparison."""
    scalar = rep.evaluate(trustee, CTX, NOW, asking=asking)
    batched = rep.evaluate_many([trustee], CTX, NOW, asking=asking)
    assert batched.shape == (1,)
    return scalar, batched[0]


class TestAllSourcesFiltered:
    def test_scalar_and_batched_fall_back_to_unknown_prior(self):
        rep = Reputation(
            table=_table(),
            unknown_prior=0.25,
            source_filter=lambda recommender, now: False,
        )
        scalar, batched = _both(rep)
        assert scalar == 0.25
        assert batched == 0.25

    def test_partial_filter_excludes_source_from_divisor(self):
        rep = Reputation(
            table=_table(), source_filter=lambda recommender, now: recommender == "a"
        )
        scalar, batched = _both(rep)
        # Only "a" survives: 0.8 / 1, not (0.8 + 0.4) / 2 or 0.8 / 2.
        assert scalar == 0.8
        assert batched == 0.8


class TestZeroFactorExcludedFromDivisor:
    def test_purged_recommender_leaves_the_average(self):
        rep = Reputation(table=_table(), weights=_purging_weights("b"))
        scalar, batched = _both(rep)
        assert scalar == 0.8  # 0.8 / 1 — "b" is gone, so is its slot
        assert batched == 0.8

    def test_all_recommenders_purged_gives_unknown_prior(self):
        rep = Reputation(
            table=_table(), weights=_purging_weights("a", "b"), unknown_prior=0.5
        )
        scalar, batched = _both(rep)
        assert scalar == 0.5
        assert batched == 0.5

    def test_unpurged_baseline_uses_full_divisor(self):
        rep = Reputation(table=_table())
        scalar, batched = _both(rep)
        assert scalar == (0.8 + 0.4) / 2
        assert batched == scalar


class TestNegativeAge:
    def test_future_opinion_raises_in_both_paths(self):
        table = _table()
        table.record("c", "y", CTX, 0.6, NOW + 5.0)
        rep = Reputation(table=table)
        with pytest.raises(ValueError, match="precedes opinion of 'c'"):
            rep.evaluate("y", CTX, NOW, asking="q")
        with pytest.raises(ValueError, match="precedes opinion of 'c'"):
            rep.evaluate_many(["y"], CTX, NOW, asking="q")

    def test_batched_never_masks_the_error(self):
        # A healthy trustee alongside the poisoned one: the batch must
        # still raise rather than return a partial row.
        table = _table()
        table.record("a", "z", CTX, 0.9, 30.0)
        table.record("c", "y", CTX, 0.6, NOW + 5.0)
        rep = Reputation(table=table)
        with pytest.raises(ValueError, match="precedes opinion of 'c'"):
            rep.evaluate_many(["z", "y"], CTX, NOW, asking="q")

    def test_askers_own_future_opinion_is_excluded_before_the_check(self):
        table = _table()
        table.record("q", "y", CTX, 0.9, NOW + 50.0)
        rep = Reputation(table=table)
        scalar, batched = _both(rep, asking="q")
        assert scalar == (0.8 + 0.4) / 2
        assert batched == scalar
        # Any other asker still trips over q's future opinion.
        with pytest.raises(ValueError, match="precedes opinion of 'q'"):
            rep.evaluate_many(["y"], CTX, NOW, asking="other")


class TestBatchedShapeContract:
    def test_empty_and_duplicate_trustees(self):
        rep = Reputation(table=_table(), unknown_prior=0.1)
        assert rep.evaluate_many([], CTX, NOW, asking="q").shape == (0,)
        out = rep.evaluate_many(["y", "unknown", "y"], CTX, NOW, asking="q")
        assert out[0] == out[2] == rep.evaluate("y", CTX, NOW, asking="q")
        assert out[1] == 0.1
        assert out.dtype == np.float64
