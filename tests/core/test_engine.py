"""Tests for Θ (direct), Ω (reputation) and Γ (engine)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.context import EXECUTION, STORAGE
from repro.core.decay import ExponentialDecay, LinearDecay, NoDecay
from repro.core.direct import DirectTrust
from repro.core.engine import TrustEngine
from repro.core.levels import TrustLevel
from repro.core.recommender import AllianceRegistry, RecommenderWeights
from repro.core.reputation import Reputation
from repro.core.tables import TrustTable


def make_engine(**kwargs) -> TrustEngine:
    return TrustEngine.build(**kwargs)


class TestDirectTrust:
    def test_fresh_entry_taken_at_face_value(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.8, time=10.0)
        theta = DirectTrust(table=table, decay=NoDecay())
        assert theta.evaluate("x", "y", EXECUTION, now=10.0) == pytest.approx(0.8)

    def test_decay_applies_to_age(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 1.0, time=0.0)
        theta = DirectTrust(table=table, decay=LinearDecay(horizon=10.0))
        assert theta.evaluate("x", "y", EXECUTION, now=5.0) == pytest.approx(0.5)

    def test_unknown_pair_gets_prior(self):
        theta = DirectTrust(table=TrustTable(), unknown_prior=0.3)
        assert theta.evaluate("x", "y", EXECUTION, now=0.0) == 0.3

    def test_clock_backwards_rejected(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.5, time=10.0)
        theta = DirectTrust(table=table)
        with pytest.raises(ValueError):
            theta.evaluate("x", "y", EXECUTION, now=9.0)

    def test_per_context_decay(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 1.0, time=0.0)
        table.record("x", "y", STORAGE, 1.0, time=0.0)
        theta = DirectTrust(table=table, decay=NoDecay())
        theta.set_context_decay(STORAGE, LinearDecay(horizon=10.0))
        assert theta.evaluate("x", "y", EXECUTION, now=5.0) == 1.0
        assert theta.evaluate("x", "y", STORAGE, now=5.0) == pytest.approx(0.5)


class TestReputation:
    def test_average_of_third_party_opinions(self):
        table = TrustTable()
        table.record("a", "y", EXECUTION, 0.4, time=0.0)
        table.record("b", "y", EXECUTION, 0.8, time=0.0)
        omega = Reputation(table=table)
        assert omega.evaluate("y", EXECUTION, now=0.0, asking="x") == pytest.approx(0.6)

    def test_askers_own_opinion_excluded(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.0, time=0.0)
        table.record("a", "y", EXECUTION, 1.0, time=0.0)
        omega = Reputation(table=table)
        assert omega.evaluate("y", EXECUTION, now=0.0, asking="x") == pytest.approx(1.0)

    def test_recommender_factor_weighs_opinions(self):
        table = TrustTable()
        table.record("ally", "y", EXECUTION, 1.0, time=0.0)
        alliances = AllianceRegistry()
        alliances.declare("cartel", ["ally", "y"])
        weights = RecommenderWeights(alliances=alliances, ally_weight=0.5)
        omega = Reputation(table=table, weights=weights)
        assert omega.evaluate("y", EXECUTION, now=0.0, asking="x") == pytest.approx(0.5)

    def test_no_opinions_gives_prior(self):
        omega = Reputation(table=TrustTable(), unknown_prior=0.25)
        assert omega.evaluate("y", EXECUTION, now=0.0, asking="x") == 0.25

    def test_decay_applies_per_opinion(self):
        table = TrustTable()
        table.record("a", "y", EXECUTION, 1.0, time=0.0)
        table.record("b", "y", EXECUTION, 1.0, time=10.0)
        omega = Reputation(table=table, decay=LinearDecay(horizon=20.0))
        # At t=10: a's opinion decayed to 0.5, b's fresh at 1.0.
        assert omega.evaluate("y", EXECUTION, now=10.0, asking="x") == pytest.approx(0.75)

    def test_future_opinion_rejected(self):
        table = TrustTable()
        table.record("a", "y", EXECUTION, 1.0, time=10.0)
        with pytest.raises(ValueError):
            Reputation(table=table).evaluate("y", EXECUTION, now=5.0, asking="x")


class TestTrustEngine:
    def test_gamma_is_weighted_combination(self):
        engine = make_engine(alpha=0.7, beta=0.3)
        engine.table.record("x", "y", EXECUTION, 1.0, time=0.0)  # direct = 1
        engine.table.record("z", "y", EXECUTION, 0.0, time=0.0)  # reputation = 0
        assert engine.gamma("x", "y", EXECUTION, now=0.0) == pytest.approx(0.7)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            make_engine(alpha=0.5, beta=0.6)
        with pytest.raises(ValueError):
            make_engine(alpha=-0.2, beta=1.2)

    def test_shared_table_serves_both_roles(self):
        engine = make_engine()
        assert engine.direct.table is engine.reputation.table

    def test_gamma_level_quantises(self):
        engine = make_engine(alpha=1.0, beta=0.0)
        engine.table.record("x", "y", EXECUTION, 0.95, time=0.0)
        assert engine.gamma_level("x", "y", EXECUTION, now=0.0) is TrustLevel.F

    def test_unknown_entity_gives_prior_level(self):
        engine = make_engine()
        assert engine.gamma("x", "stranger", EXECUTION, now=0.0) == 0.0
        assert engine.gamma_level("x", "stranger", EXECUTION, now=0.0) is TrustLevel.A

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_gamma_stays_in_unit_interval(self, direct_v, rep_v, alpha):
        """Γ is a convex combination of unit-interval components."""
        engine = make_engine(alpha=alpha, beta=1.0 - alpha)
        engine.table.record("x", "y", EXECUTION, direct_v, time=0.0)
        engine.table.record("z", "y", EXECUTION, rep_v, time=0.0)
        gamma = engine.gamma("x", "y", EXECUTION, now=0.0)
        assert 0.0 <= gamma <= 1.0
        assert min(direct_v, rep_v) - 1e-9 <= gamma <= max(direct_v, rep_v) + 1e-9

    def test_decay_flows_through_engine(self):
        engine = make_engine(alpha=1.0, beta=0.0, decay=ExponentialDecay(rate=0.1))
        engine.table.record("x", "y", EXECUTION, 1.0, time=0.0)
        g_now = engine.gamma("x", "y", EXECUTION, now=0.0)
        g_later = engine.gamma("x", "y", EXECUTION, now=50.0)
        assert g_later < g_now
