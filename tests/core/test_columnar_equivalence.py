"""Hypothesis equivalence suite: batched trust kernels vs the scalar oracle.

The batched kernels (``Reputation.evaluate_many``,
``TrustEngine.gamma_matrix``) promise *bit-identity* with the scalar
``evaluate`` / ``gamma`` loops — not approximate agreement.  Every
comparison below therefore uses exact ``==`` over randomly generated
worlds: random tables, decays, alliances, learned accuracies, purged
recommenders, source filters and askers, plus mid-run table/weights
evolution to exercise the epoch-versioned memo.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import TrustContext
from repro.core.decay import (
    ExponentialDecay,
    HalfLifeDecay,
    LinearDecay,
    NoDecay,
    StepDecay,
)
from repro.core.domains import DomainMap
from repro.core.engine import TrustEngine
from repro.core.recommender import AllianceRegistry, RecommenderWeights
from repro.core.reputation import Reputation
from repro.core.tables import TrustTable
from repro.obs.metrics import MetricsRegistry
from repro.trustfaults.credibility import CredibilityWeights

NOW = 100.0
CONTEXTS = (TrustContext("c0"), TrustContext("c1"))
DECAYS = (
    NoDecay(),
    ExponentialDecay(rate=0.03, floor=0.1),
    LinearDecay(horizon=60.0),
    StepDecay(fresh_for=40.0, stale_value=0.4),
    HalfLifeDecay(half_life=25.0),
)


@st.composite
def trust_worlds(draw):
    """A random (engine, entities) world sharing one DTT/RTT table."""
    n = draw(st.integers(min_value=4, max_value=9))
    entities = [f"e{i}" for i in range(n)]

    table = TrustTable()
    for _ in range(draw(st.integers(min_value=0, max_value=35))):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 2))
        trustee = entities[j if j < i else j + 1]
        table.record(
            entities[i],
            trustee,
            draw(st.sampled_from(CONTEXTS)),
            draw(st.floats(0.0, 1.0, allow_nan=False)),
            draw(st.floats(0.0, NOW, allow_nan=False)),
        )

    alliances = AllianceRegistry()
    if draw(st.booleans()):
        members = draw(
            st.lists(st.sampled_from(entities), min_size=2, max_size=4, unique=True)
        )
        alliances.declare("g", members)
    if draw(st.booleans()):
        weights = CredibilityWeights(
            alliances=alliances,
            purge_threshold=draw(st.sampled_from((0.0, 0.6))),
            min_observations=1,
            learning_rate=1.0,
        )
    else:
        weights = RecommenderWeights(alliances=alliances)
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        weights.observe_outcome(
            draw(st.sampled_from(entities)),
            draw(st.floats(0.0, 1.0, allow_nan=False)),
            draw(st.floats(0.0, 1.0, allow_nan=False)),
        )

    engine = TrustEngine.build(
        alpha=0.6,
        beta=0.4,
        decay=draw(st.sampled_from(DECAYS)),
        weights=weights,
        table=table,
        unknown_prior=draw(st.sampled_from((0.0, 0.3))),
    )
    return engine, entities


def _assert_gamma_bit_identical(engine, entities):
    for context in CONTEXTS:
        matrix = engine.gamma_matrix(entities, entities, context, NOW)
        assert matrix.shape == (len(entities), len(entities))
        for i, x in enumerate(entities):
            for j, y in enumerate(entities):
                assert matrix[i, j] == engine.gamma(x, y, context, NOW)


@settings(max_examples=30, deadline=None)
@given(world=trust_worlds())
def test_gamma_matrix_matches_scalar_exactly(world):
    engine, entities = world
    _assert_gamma_bit_identical(engine, entities)


@settings(max_examples=30, deadline=None)
@given(world=trust_worlds(), asker_idx=st.integers(0, 9))
def test_evaluate_many_matches_scalar_exactly(world, asker_idx):
    engine, entities = world
    rep = engine.reputation
    asker = (entities + ["stranger"])[asker_idx % (len(entities) + 1)]
    trustees = entities + ["unknown", entities[0]]
    for context in CONTEXTS:
        batched = rep.evaluate_many(trustees, context, NOW, asking=asker)
        for j, y in enumerate(trustees):
            assert batched[j] == rep.evaluate(y, context, NOW, asking=asker)


@settings(max_examples=20, deadline=None)
@given(world=trust_worlds(), data=st.data())
def test_mid_run_evolution_invalidates_the_memo(world, data):
    """Mutations between batches must never serve stale memoised rows."""
    engine, entities = world
    _assert_gamma_bit_identical(engine, entities)

    mutation = data.draw(st.sampled_from(("record", "outcome", "alliance")))
    if mutation == "record":
        engine.table.record(
            entities[0], entities[1], CONTEXTS[0],
            data.draw(st.floats(0.0, 1.0, allow_nan=False)), NOW - 1.0,
        )
    elif mutation == "outcome":
        engine.reputation.weights.observe_outcome(entities[1], 0.9, 0.1)
    else:
        engine.reputation.weights.alliances.declare("late", entities[:2])

    _assert_gamma_bit_identical(engine, entities)


@settings(max_examples=20, deadline=None)
@given(world=trust_worlds(), data=st.data())
def test_cross_domain_mutation_interleavings_stay_bit_identical(world, data):
    """Interleaved mutations across many Grid domains never serve stale rows.

    The sharded store invalidates per domain: a mutation in domain D must
    refresh D's shard and exactly the memo rows whose signature touches D,
    while every other shard's rows keep serving.  Random interleavings of
    records, removals, outcome observations, alliance churn and resolver
    swaps — with surface evaluations in between — must stay bit-identical
    to the scalar oracle throughout.
    """
    engine, entities = world
    weights = engine.reputation.weights
    _assert_gamma_bit_identical(engine, entities)
    for step in range(data.draw(st.integers(min_value=1, max_value=5))):
        kind = data.draw(
            st.sampled_from(
                ("record", "remove", "outcome", "alliance", "dissolve")
            )
        )
        if kind == "record":
            i = data.draw(st.integers(0, len(entities) - 1))
            j = data.draw(st.integers(0, len(entities) - 2))
            trustee = entities[j if j < i else j + 1]
            engine.table.record(
                entities[i], trustee,
                data.draw(st.sampled_from(CONTEXTS)),
                data.draw(st.floats(0.0, 1.0, allow_nan=False)),
                data.draw(st.floats(0.0, NOW, allow_nan=False)),
            )
        elif kind == "remove":
            keys = [k for k, _ in engine.table.items()]
            if keys:
                engine.table.remove(*data.draw(st.sampled_from(keys)))
        elif kind == "outcome":
            weights.observe_outcome(
                data.draw(st.sampled_from(entities)),
                data.draw(st.floats(0.0, 1.0, allow_nan=False)),
                data.draw(st.floats(0.0, 1.0, allow_nan=False)),
            )
        elif kind == "alliance":
            weights.alliances.declare(f"late{step}", entities[:2])
        else:
            try:
                weights.alliances.dissolve("g")
            except KeyError:
                pass
        if data.draw(st.booleans()):
            _assert_gamma_bit_identical(engine, entities)
    _assert_gamma_bit_identical(engine, entities)


@settings(max_examples=20, deadline=None)
@given(world=trust_worlds(), cutoff=st.floats(0.0, 1.0, allow_nan=False))
def test_source_filter_regime_matches_scalar_exactly(world, cutoff):
    """With an availability filter installed, Ω degrades identically."""
    engine, entities = world
    filtered = Reputation(
        table=engine.table,
        weights=engine.reputation.weights,
        decay=engine.reputation.decay,
        unknown_prior=engine.reputation.unknown_prior,
        source_filter=lambda z, now: (hash(z) % 100) / 100.0 >= cutoff,
    )
    for context in CONTEXTS:
        batched = filtered.evaluate_many(entities, context, NOW, asking="stranger")
        for j, y in enumerate(entities):
            assert batched[j] == filtered.evaluate(y, context, NOW, asking="stranger")


class TestMemoInstrumentation:
    def _engine(self):
        # One Grid domain per entity, so sub-row counts are deterministic:
        # a gamma_matrix over 4 trusters × 4 trustees computes 4 × 4 = 16
        # sub-rows (one per truster per trustee domain).
        table = TrustTable(domains=DomainMap(domain_of=lambda e: e))
        for i in range(4):
            for j in range(4):
                if i != j:
                    table.record(f"e{i}", f"e{j}", CONTEXTS[0], 0.5 + 0.1 * i, 10.0 * j)
        return TrustEngine.build(table=table), [f"e{i}" for i in range(4)]

    def test_memo_hits_and_batch_rows_are_counted(self):
        engine, entities = self._engine()
        registry = MetricsRegistry(enabled=True)
        engine.bind_metrics(registry)
        n_sub = len(entities) * len(entities)  # trusters × trustee domains
        first = engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        assert registry.counter("trust.batch_rows").value == n_sub
        assert registry.counter("trust.memo_hits").value == 0
        second = engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        assert registry.counter("trust.memo_hits").value == n_sub
        assert registry.counter("trust.batch_rows").value == n_sub
        np.testing.assert_array_equal(first, second)
        assert registry.histogram(
            "trust.gamma_latency_s.kernel=batched"
        ).count == 2

    def test_mutation_invalidates_only_the_dirty_domain(self):
        engine, entities = self._engine()
        registry = MetricsRegistry(enabled=True)
        engine.bind_metrics(registry)
        engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        # Mutating an opinion about e1 dirties exactly e1's domain: the
        # 4 sub-rows targeting it are dropped and recomputed, the other
        # 12 sub-rows are served from the memo.
        engine.table.record("e0", "e1", CONTEXTS[0], 0.9, 50.0)
        engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        assert registry.counter("trust.memo_invalidations").value == len(entities)
        assert registry.counter("trust.memo_hits").value == 3 * len(entities)
        assert registry.counter("trust.batch_rows").value == 5 * len(entities)

    def test_structural_change_clears_the_memo_wholesale(self):
        engine, entities = self._engine()
        registry = MetricsRegistry(enabled=True)
        engine.bind_metrics(registry)
        engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        engine.alpha, engine.beta = 0.5, 0.5
        engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        assert registry.counter("trust.memo_invalidations").value == 1
        assert registry.counter("trust.memo_hits").value == 0

    def test_scalar_gamma_feeds_the_scalar_histogram(self):
        engine, entities = self._engine()
        registry = MetricsRegistry(enabled=True)
        engine.bind_metrics(registry)
        engine.gamma(entities[0], entities[1], CONTEXTS[0], NOW)
        assert registry.histogram(
            "trust.gamma_latency_s.kernel=scalar"
        ).count == 1
        assert registry.histogram(
            "trust.gamma_latency_s.kernel=batched"
        ).count == 0

    def test_degraded_rows_are_never_memoised(self):
        engine, entities = self._engine()
        engine.reputation = Reputation(
            table=engine.table,
            weights=engine.reputation.weights,
            source_filter=lambda z, now: z != "e1",
        )
        engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        assert not engine._memo

    def test_clear_memo_forgets_every_row(self):
        engine, entities = self._engine()
        engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        assert engine._memo
        engine.clear_memo()
        assert not engine._memo
