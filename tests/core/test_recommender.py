"""Tests for repro.core.recommender (alliances and R factors)."""

import time

import pytest

from repro.core.recommender import AllianceRegistry, RecommenderWeights


class TestAllianceRegistry:
    def test_members_of_group_are_allied(self):
        reg = AllianceRegistry()
        reg.declare("axis", ["a", "b", "c"])
        assert reg.allied("a", "b")
        assert reg.allied("c", "a")

    def test_non_members_not_allied(self):
        reg = AllianceRegistry()
        reg.declare("axis", ["a", "b"])
        assert not reg.allied("a", "z")

    def test_self_always_allied(self):
        assert AllianceRegistry().allied("a", "a")

    def test_declare_extends(self):
        reg = AllianceRegistry()
        reg.declare("g", ["a"])
        reg.declare("g", ["b"])
        assert reg.allied("a", "b")

    def test_multiple_groups(self):
        reg = AllianceRegistry()
        reg.declare("g1", ["a", "b"])
        reg.declare("g2", ["b", "c"])
        assert reg.allied("a", "b") and reg.allied("b", "c")
        assert not reg.allied("a", "c")  # alliance is not transitive across groups
        assert reg.allies_of("b") == {"a", "c"}

    def test_dissolve(self):
        reg = AllianceRegistry()
        reg.declare("g", ["a", "b"])
        reg.dissolve("g")
        assert not reg.allied("a", "b")
        with pytest.raises(KeyError):
            reg.dissolve("g")

    def test_groups_listing(self):
        reg = AllianceRegistry()
        reg.declare("g1", ["a"])
        reg.declare("g2", ["b"])
        assert reg.groups() == {"g1", "g2"}

    def test_alliance_transitive_within_group(self):
        # Membership in one named group allies every pair, not just the
        # pairs that were declared together.
        reg = AllianceRegistry()
        reg.declare("g", ["a"])
        reg.declare("g", ["b"])
        reg.declare("g", ["c"])
        assert reg.allied("a", "c")
        assert reg.allies_of("a") == {"b", "c"}

    def test_dissolve_keeps_other_memberships(self):
        reg = AllianceRegistry()
        reg.declare("g1", ["a", "b"])
        reg.declare("g2", ["b", "c"])
        reg.dissolve("g1")
        assert not reg.allied("a", "b")
        assert reg.allied("b", "c")

    def test_allied_is_fast_with_many_groups(self):
        """The entity→groups index keeps ``allied`` O(memberships), not
        O(declared groups): with 20k groups a check must stay well under
        100 µs on average (the un-indexed scan is ~three orders slower)."""
        reg = AllianceRegistry()
        for g in range(20_000):
            reg.declare(f"g{g}", [f"a{g}", f"b{g}", f"c{g}"])
        pairs = [(f"a{i}", f"b{(i * 7) % 20_000}") for i in range(2_000)]
        start = time.perf_counter()
        hits = sum(reg.allied(a, b) for a, b in pairs)
        elapsed = time.perf_counter() - start
        assert hits >= 1  # the i == 0 pair shares g0
        assert elapsed / len(pairs) < 100e-6


class TestRecommenderWeights:
    def test_default_factor_is_full(self):
        assert RecommenderWeights().factor("z", "y") == 1.0

    def test_allied_recommendation_discounted(self):
        reg = AllianceRegistry()
        reg.declare("cartel", ["z", "y"])
        weights = RecommenderWeights(alliances=reg, ally_weight=0.5)
        assert weights.factor("z", "y") == 0.5
        assert weights.factor("z", "other") == 1.0

    def test_accurate_recommender_keeps_weight(self):
        w = RecommenderWeights(learning_rate=0.5)
        w.observe_outcome("z", predicted=0.8, actual=0.8)
        assert w.accuracy("z") == pytest.approx(1.0)

    def test_inaccurate_recommender_loses_weight(self):
        w = RecommenderWeights(learning_rate=0.5)
        updated = w.observe_outcome("z", predicted=1.0, actual=0.0)
        assert updated == pytest.approx(0.5)
        assert w.factor("z", "y") == pytest.approx(0.5)

    def test_learning_is_ema(self):
        w = RecommenderWeights(learning_rate=0.1, default_accuracy=1.0)
        w.observe_outcome("z", 1.0, 0.0)  # sample 0.0
        assert w.accuracy("z") == pytest.approx(0.9)
        w.observe_outcome("z", 1.0, 1.0)  # sample 1.0
        assert w.accuracy("z") == pytest.approx(0.91)

    def test_alliance_and_accuracy_compose(self):
        reg = AllianceRegistry()
        reg.declare("g", ["z", "y"])
        w = RecommenderWeights(alliances=reg, ally_weight=0.5, learning_rate=1.0)
        w.observe_outcome("z", 1.0, 0.5)  # accuracy 0.5
        assert w.factor("z", "y") == pytest.approx(0.25)

    @pytest.mark.parametrize("pred,actual", [(-0.1, 0.5), (0.5, 1.1)])
    def test_outcome_bounds_checked(self, pred, actual):
        with pytest.raises(ValueError):
            RecommenderWeights().observe_outcome("z", pred, actual)

    @pytest.mark.parametrize("pred,actual", [(0.0, 1.0), (1.0, 0.0), (0.0, 0.0)])
    def test_outcome_boundary_values_accepted(self, pred, actual):
        w = RecommenderWeights(learning_rate=1.0)
        assert 0.0 <= w.observe_outcome("z", pred, actual) <= 1.0

    def test_factor_stays_clamped_to_unit_interval(self):
        # Worst-case composition: accuracy driven to 0, alliance discount
        # applied; best case: perfect accuracy, no alliance.  R never
        # leaves [0, 1].
        reg = AllianceRegistry()
        reg.declare("g", ["z", "y"])
        w = RecommenderWeights(alliances=reg, ally_weight=1.0, learning_rate=1.0)
        assert w.factor("z", "y") == 1.0
        for _ in range(5):
            w.observe_outcome("z", 1.0, 0.0)
        assert w.factor("z", "y") == 0.0
        assert all(0.0 <= w.factor("z", t) <= 1.0 for t in ("y", "w"))

    def test_self_recommendation_is_discounted(self):
        # allied(z, z) is always True, so an entity recommending itself is
        # discounted like any clique member even with no declared groups.
        w = RecommenderWeights(ally_weight=0.25)
        assert w.factor("z", "z") == pytest.approx(0.25)
        assert w.factor("z", "other") == 1.0

    def test_transitive_alliance_discounts_recommendation(self):
        # z never declared an alliance *with* y directly; they merely
        # joined the same group at different times.
        reg = AllianceRegistry()
        reg.declare("ring", ["z"])
        reg.declare("ring", ["m"])
        reg.declare("ring", ["y"])
        w = RecommenderWeights(alliances=reg, ally_weight=0.5)
        assert w.factor("z", "y") == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ally_weight": -0.1},
            {"ally_weight": 1.1},
            {"default_accuracy": 2.0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecommenderWeights(**kwargs)


class TestDomainEpochs:
    """Weights/alliances bump per-domain counters for shard factor sigs."""

    def _domains(self):
        from repro.core.domains import DomainMap

        return DomainMap(domain_of=lambda e: str(e))

    def test_observe_outcome_bumps_the_recommender_domain(self):
        from repro.core.recommender import AllianceRegistry, RecommenderWeights

        domains = self._domains()
        weights = RecommenderWeights(
            alliances=AllianceRegistry(domains=domains), domains=domains
        )
        e0_z, e0_other = weights.domain_epoch("z"), weights.domain_epoch("o")
        weights.observe_outcome("z", 0.8, 0.2)
        assert weights.domain_epoch("z") != e0_z
        assert weights.domain_epoch("o") == e0_other

    def test_alliance_churn_bumps_every_member_domain(self):
        from repro.core.recommender import AllianceRegistry

        registry = AllianceRegistry(domains=self._domains())
        registry.declare("g", ["a", "b"])
        assert registry.domain_epoch("a") == 1
        assert registry.domain_epoch("b") == 1
        assert registry.domain_epoch("c") == 0
        registry.dissolve("g")
        assert registry.domain_epoch("a") == 2
        assert registry.domain_epoch("c") == 0

    def test_tokens_are_unique_per_instance(self):
        from repro.core.recommender import AllianceRegistry, RecommenderWeights

        a, b = AllianceRegistry(), AllianceRegistry()
        assert a.token != b.token
        w1, w2 = RecommenderWeights(), RecommenderWeights()
        assert w1.token != w2.token

    def test_inert_detection(self):
        from repro.core.recommender import AllianceRegistry, RecommenderWeights

        weights = RecommenderWeights()
        assert weights.is_inert
        weights.observe_outcome("z", 0.5, 0.5)
        assert not weights.is_inert
        allied = RecommenderWeights(alliances=AllianceRegistry())
        allied.alliances.declare("g", ["a", "b"])
        assert not allied.is_inert
        biased = RecommenderWeights(default_accuracy=0.5)
        assert not biased.is_inert
