"""Tests for repro.core.recommender (alliances and R factors)."""

import pytest

from repro.core.recommender import AllianceRegistry, RecommenderWeights


class TestAllianceRegistry:
    def test_members_of_group_are_allied(self):
        reg = AllianceRegistry()
        reg.declare("axis", ["a", "b", "c"])
        assert reg.allied("a", "b")
        assert reg.allied("c", "a")

    def test_non_members_not_allied(self):
        reg = AllianceRegistry()
        reg.declare("axis", ["a", "b"])
        assert not reg.allied("a", "z")

    def test_self_always_allied(self):
        assert AllianceRegistry().allied("a", "a")

    def test_declare_extends(self):
        reg = AllianceRegistry()
        reg.declare("g", ["a"])
        reg.declare("g", ["b"])
        assert reg.allied("a", "b")

    def test_multiple_groups(self):
        reg = AllianceRegistry()
        reg.declare("g1", ["a", "b"])
        reg.declare("g2", ["b", "c"])
        assert reg.allied("a", "b") and reg.allied("b", "c")
        assert not reg.allied("a", "c")  # alliance is not transitive across groups
        assert reg.allies_of("b") == {"a", "c"}

    def test_dissolve(self):
        reg = AllianceRegistry()
        reg.declare("g", ["a", "b"])
        reg.dissolve("g")
        assert not reg.allied("a", "b")
        with pytest.raises(KeyError):
            reg.dissolve("g")

    def test_groups_listing(self):
        reg = AllianceRegistry()
        reg.declare("g1", ["a"])
        reg.declare("g2", ["b"])
        assert reg.groups() == {"g1", "g2"}


class TestRecommenderWeights:
    def test_default_factor_is_full(self):
        assert RecommenderWeights().factor("z", "y") == 1.0

    def test_allied_recommendation_discounted(self):
        reg = AllianceRegistry()
        reg.declare("cartel", ["z", "y"])
        weights = RecommenderWeights(alliances=reg, ally_weight=0.5)
        assert weights.factor("z", "y") == 0.5
        assert weights.factor("z", "other") == 1.0

    def test_accurate_recommender_keeps_weight(self):
        w = RecommenderWeights(learning_rate=0.5)
        w.observe_outcome("z", predicted=0.8, actual=0.8)
        assert w.accuracy("z") == pytest.approx(1.0)

    def test_inaccurate_recommender_loses_weight(self):
        w = RecommenderWeights(learning_rate=0.5)
        updated = w.observe_outcome("z", predicted=1.0, actual=0.0)
        assert updated == pytest.approx(0.5)
        assert w.factor("z", "y") == pytest.approx(0.5)

    def test_learning_is_ema(self):
        w = RecommenderWeights(learning_rate=0.1, default_accuracy=1.0)
        w.observe_outcome("z", 1.0, 0.0)  # sample 0.0
        assert w.accuracy("z") == pytest.approx(0.9)
        w.observe_outcome("z", 1.0, 1.0)  # sample 1.0
        assert w.accuracy("z") == pytest.approx(0.91)

    def test_alliance_and_accuracy_compose(self):
        reg = AllianceRegistry()
        reg.declare("g", ["z", "y"])
        w = RecommenderWeights(alliances=reg, ally_weight=0.5, learning_rate=1.0)
        w.observe_outcome("z", 1.0, 0.5)  # accuracy 0.5
        assert w.factor("z", "y") == pytest.approx(0.25)

    @pytest.mark.parametrize("pred,actual", [(-0.1, 0.5), (0.5, 1.1)])
    def test_outcome_bounds_checked(self, pred, actual):
        with pytest.raises(ValueError):
            RecommenderWeights().observe_outcome("z", pred, actual)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ally_weight": -0.1},
            {"ally_weight": 1.1},
            {"default_accuracy": 2.0},
            {"learning_rate": 0.0},
            {"learning_rate": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecommenderWeights(**kwargs)
