"""Zero-copy persistent opinion store: round-trip, refusal, normalization.

The snapshot/restore pair promises that a restarted service recovers a
trust plane whose Γ surface is *bit-identical* to the one it checkpointed
— without replaying transaction history — and that it refuses to restore
from a snapshot whose segments or manifest no longer match their pinned
digests.  The hypothesis property drives random shard counts and
post-restore mutation orders through the full snapshot → restore → mutate
→ evaluate cycle against the scalar oracle and a from-scratch engine.
"""

import json
import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    STORE_SCHEMA,
    ColumnarOpinionStore,
    DomainMap,
    TrustContext,
    TrustEngine,
    TrustStoreError,
    load_manifest,
    restore_trust_store,
    snapshot_trust_store,
)
from repro.core.decay import ExponentialDecay
from repro.core.recommender import AllianceRegistry, RecommenderWeights
from repro.core.tables import TrustTable
from repro.trustfaults.credibility import CredibilityWeights

NOW = 100.0
CONTEXTS = (TrustContext("c0"), TrustContext("c1"))


def _build_world(n_entities=12, n_shards=4, n_records=40, seed=0, credibility=False):
    rng = np.random.default_rng(seed)
    entities = [f"e{i}" for i in range(n_entities)]
    table = TrustTable(domains=DomainMap(n_shards=n_shards))
    for _ in range(n_records):
        i, j = rng.integers(0, n_entities, size=2)
        if i == j:
            continue
        table.record(
            entities[i], entities[j],
            CONTEXTS[int(rng.integers(0, len(CONTEXTS)))],
            float(rng.random()), float(rng.uniform(0.0, NOW - 10.0)),
        )
    alliances = AllianceRegistry(domains=table.domains)
    alliances.declare("g1", entities[:3])
    if credibility:
        weights = CredibilityWeights(
            alliances=alliances, purge_threshold=0.6,
            min_observations=1, learning_rate=1.0,
        )
    else:
        weights = RecommenderWeights(alliances=alliances)
    for k in range(0, n_entities, 3):
        weights.observe_outcome(entities[k], float(rng.random()), float(rng.random()))
    engine = TrustEngine.build(
        table=table, weights=weights, decay=ExponentialDecay(rate=0.01)
    )
    return engine, entities


def _surface(engine, entities):
    return np.stack(
        [engine.gamma_matrix(entities, entities, c, NOW) for c in CONTEXTS]
    )


class TestRoundTrip:
    def test_surface_is_bit_identical_after_restore(self, tmp_path):
        engine, entities = _build_world(credibility=True)
        before = _surface(engine, entities)
        snapshot_trust_store(tmp_path, engine.table, engine.reputation.weights)
        restored = restore_trust_store(tmp_path)
        engine2 = TrustEngine.build(
            table=restored.table, weights=restored.weights,
            decay=ExponentialDecay(rate=0.01),
        )
        assert np.array_equal(_surface(engine2, entities), before)

    def test_credibility_purge_state_survives(self, tmp_path):
        engine, entities = _build_world(credibility=True)
        weights = engine.reputation.weights
        # Drive one recommender's accuracy under the purge threshold.
        for _ in range(3):
            weights.observe_outcome(entities[0], 0.0, 1.0)
        assert weights.purged
        snapshot_trust_store(tmp_path, engine.table, weights)
        restored = restore_trust_store(tmp_path)
        assert sorted(restored.weights.purged) == sorted(weights.purged)
        assert restored.weights.factor(entities[0], entities[5]) == 0.0

    def test_restored_store_serves_without_rebuild(self, tmp_path):
        engine, entities = _build_world()
        snapshot_trust_store(tmp_path, engine.table, engine.reputation.weights)
        restored = restore_trust_store(tmp_path)
        # The restored store's shards are pre-seeded at the restored
        # table's epochs: a refresh finds nothing dirty.
        assert restored.store.refresh() == 0

    def test_explicit_domain_map_requires_caller_domains(self, tmp_path):
        domains = DomainMap(domain_of=lambda e: str(e)[:2])
        table = TrustTable(domains=domains)
        table.record("ax", "by", CONTEXTS[0], 0.5, 10.0)
        snapshot_trust_store(tmp_path, table)
        with pytest.raises(TrustStoreError, match="explicit"):
            restore_trust_store(tmp_path)
        restored = restore_trust_store(tmp_path, domains=domains)
        assert list(restored.table.items())

    def test_weightless_snapshot_restores_none(self, tmp_path):
        engine, entities = _build_world()
        snapshot_trust_store(tmp_path, engine.table)
        restored = restore_trust_store(tmp_path)
        assert restored.weights is None


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_snapshot_mutate_restore_is_bit_identical(tmp_path_factory, data):
    """snapshot → restore → mutate k domains ⇒ Γ bit-identical to fresh.

    For random shard counts and mutation orders, the restored plane's
    batched surface must equal both the scalar oracle over the restored
    table and a from-scratch engine built over the same table — i.e. the
    memmap-backed shards and the incremental invalidation path can never
    drift from a cold rebuild.
    """
    tmp_path = tmp_path_factory.mktemp("store")
    n_shards = data.draw(st.integers(min_value=1, max_value=8))
    seed = data.draw(st.integers(min_value=0, max_value=2**16))
    engine, entities = _build_world(
        n_shards=n_shards, seed=seed, credibility=data.draw(st.booleans())
    )
    before = _surface(engine, entities)
    snapshot_trust_store(tmp_path, engine.table, engine.reputation.weights)
    restored = restore_trust_store(tmp_path)
    engine2 = TrustEngine.build(
        table=restored.table, weights=restored.weights,
        decay=ExponentialDecay(rate=0.01),
    )
    assert np.array_equal(_surface(engine2, entities), before)

    # Mutate k random domains in random order, interleaving evaluations.
    for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
        i = data.draw(st.integers(0, len(entities) - 1))
        j = data.draw(st.integers(0, len(entities) - 2))
        trustee = entities[j if j < i else j + 1]
        restored.table.record(
            entities[i], trustee,
            data.draw(st.sampled_from(CONTEXTS)),
            data.draw(st.floats(0.0, 1.0, allow_nan=False)),
            data.draw(st.floats(0.0, NOW - 1.0, allow_nan=False)),
        )
        if data.draw(st.booleans()):
            _surface(engine2, entities)

    incremental = _surface(engine2, entities)
    fresh = TrustEngine.build(
        table=restored.table, weights=restored.weights,
        decay=ExponentialDecay(rate=0.01),
    )
    assert np.array_equal(incremental, _surface(fresh, entities))
    for k, context in enumerate(CONTEXTS):
        for i, x in enumerate(entities):
            for j, y in enumerate(entities):
                assert incremental[k, i, j] == engine2.gamma(x, y, context, NOW)


class TestRefusal:
    def _snapshot(self, tmp_path):
        engine, entities = _build_world()
        manifest = snapshot_trust_store(
            tmp_path, engine.table, engine.reputation.weights
        )
        return manifest

    def test_corrupted_segment_is_refused(self, tmp_path):
        manifest = self._snapshot(tmp_path)
        segment = next(tmp_path.glob("shard-*.value.bin"))
        data = bytearray(segment.read_bytes())
        data[0] ^= 0xFF
        segment.write_bytes(bytes(data))
        with pytest.raises(TrustStoreError, match="digest"):
            restore_trust_store(tmp_path)
        assert manifest.is_file()

    def test_truncated_segment_is_refused(self, tmp_path):
        self._snapshot(tmp_path)
        segment = next(tmp_path.glob("shard-*.time.bin"))
        segment.write_bytes(segment.read_bytes()[:-8])
        with pytest.raises(TrustStoreError):
            restore_trust_store(tmp_path)

    def test_corrupted_manifest_is_refused(self, tmp_path):
        manifest = self._snapshot(tmp_path)
        manifest.write_text(manifest.read_text()[:-40])
        with pytest.raises(TrustStoreError):
            restore_trust_store(tmp_path)

    def test_wrong_schema_tag_is_refused(self, tmp_path):
        manifest = self._snapshot(tmp_path)
        payload = json.loads(manifest.read_text())
        payload["schema"] = "repro.trust.store/v0"
        manifest.write_text(json.dumps(payload))
        with pytest.raises(TrustStoreError, match="schema"):
            load_manifest(tmp_path)

    def test_missing_manifest_is_refused(self, tmp_path):
        with pytest.raises(TrustStoreError):
            restore_trust_store(tmp_path)

    def test_unverified_restore_skips_digests(self, tmp_path):
        """``verify=False`` trusts the directory (fast path, same values)."""
        self._snapshot(tmp_path)
        engine, entities = _build_world()
        restored = restore_trust_store(tmp_path, verify=False)
        engine2 = TrustEngine.build(
            table=restored.table, weights=restored.weights,
            decay=ExponentialDecay(rate=0.01),
        )
        assert np.array_equal(_surface(engine2, entities), _surface(engine, entities))

    def test_non_json_entities_are_rejected_at_snapshot(self, tmp_path):
        table = TrustTable()
        table.record(("tuple", "id"), "y", CONTEXTS[0], 0.5, 1.0)
        with pytest.raises(TrustStoreError, match="JSON"):
            snapshot_trust_store(tmp_path, table)


class TestEpochNormalization:
    """Regression: ``weights=None`` vs an inert resolver are the same state."""

    def _store(self):
        engine, entities = _build_world(n_records=25)
        store = engine.reputation.columnar_store()
        store.refresh()
        return engine, store, entities

    def test_inert_resolver_is_the_null_state(self):
        table = TrustTable()
        table.record("a", "b", CONTEXTS[0], 0.5, 1.0)
        store = ColumnarOpinionStore(table)
        e0 = store.epoch
        store.set_weights(RecommenderWeights())  # no accuracies, no groups
        assert store.epoch == e0
        store.set_weights(None)
        assert store.epoch == e0

    def test_installing_then_removing_weights_invalidates_exactly_once(self):
        table = TrustTable()
        table.record("a", "b", CONTEXTS[0], 0.5, 1.0)
        store = ColumnarOpinionStore(table)
        e0 = store.epoch
        active = RecommenderWeights()
        active.observe_outcome("a", 0.9, 0.2)  # non-inert: learned accuracy
        store.set_weights(active)
        e1 = store.epoch
        assert e1 != e0  # exactly one state transition on install...
        store.set_weights(active)
        assert store.epoch == e1
        store.set_weights(None)
        assert store.epoch == e0  # ...and back to the normalized null state

    def test_inert_install_serves_memoised_rows(self):
        from repro.obs.metrics import MetricsRegistry

        rng = np.random.default_rng(1)
        entities = [f"e{i}" for i in range(8)]
        table = TrustTable()
        for _ in range(20):
            i, j = rng.integers(0, len(entities), size=2)
            if i == j:
                continue
            table.record(
                entities[i], entities[j], CONTEXTS[0],
                float(rng.random()), float(rng.uniform(0.0, NOW - 10.0)),
            )
        engine = TrustEngine.build(table=table)  # default inert resolver
        metrics = MetricsRegistry()
        engine.bind_metrics(metrics)
        engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        baseline = metrics.counter("trust.memo_invalidations").value
        hits_before = metrics.counter("trust.memo_hits").value
        engine.reputation.weights = RecommenderWeights()  # inert-for-inert swap
        engine.gamma_matrix(entities, entities, CONTEXTS[0], NOW)
        assert metrics.counter("trust.memo_invalidations").value == baseline
        assert metrics.counter("trust.memo_hits").value > hits_before


class TestManifest:
    def test_manifest_shape(self, tmp_path):
        engine, entities = _build_world()
        path = snapshot_trust_store(
            tmp_path, engine.table, engine.reputation.weights
        )
        manifest = load_manifest(tmp_path)
        assert manifest["schema"] == STORE_SCHEMA
        assert manifest["domain_map"]["kind"] == "crc32"
        assert manifest["shards"]
        for shard in manifest["shards"]:
            assert set(shard["columns"]) == {
                "truster", "trustee", "context", "value", "time", "txcount",
            }
            for meta in shard["columns"].values():
                assert (tmp_path / meta["file"]).is_file()
                assert len(meta["sha256"]) == 64
        assert path.name == "manifest.json"

    def test_snapshot_is_deterministic(self, tmp_path):
        engine, _ = _build_world()
        a, b = tmp_path / "a", tmp_path / "b"
        snapshot_trust_store(a, engine.table, engine.reputation.weights)
        snapshot_trust_store(b, engine.table, engine.reputation.weights)
        assert (a / "manifest.json").read_text() == (b / "manifest.json").read_text()

class TestRefusalNamesOffendingPath:
    """Every refusal must say *which* file is bad (ISSUE: typed errors
    naming the offending path), so an operator can triage a corrupt
    checkpoint without bisecting the directory by hand."""

    def _snapshot(self, tmp_path):
        engine, _ = _build_world()
        return snapshot_trust_store(
            tmp_path, engine.table, engine.reputation.weights
        )

    def test_truncated_manifest_names_manifest(self, tmp_path):
        manifest = self._snapshot(tmp_path)
        manifest.write_text(manifest.read_text()[:-40])
        with pytest.raises(TrustStoreError, match=re.escape(str(manifest))):
            restore_trust_store(tmp_path)

    def test_missing_segment_names_segment(self, tmp_path):
        self._snapshot(tmp_path)
        segment = next(tmp_path.glob("shard-*.value.bin"))
        segment.unlink()
        with pytest.raises(TrustStoreError, match=re.escape(str(segment))):
            restore_trust_store(tmp_path)

    def test_digest_mismatch_names_segment(self, tmp_path):
        self._snapshot(tmp_path)
        segment = next(tmp_path.glob("shard-*.txcount.bin"))
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0x01
        segment.write_bytes(bytes(data))
        with pytest.raises(TrustStoreError) as exc_info:
            restore_trust_store(tmp_path)
        assert str(segment) in str(exc_info.value)
        assert "digest" in str(exc_info.value)

    def test_truncated_segment_names_segment(self, tmp_path):
        self._snapshot(tmp_path)
        segment = next(tmp_path.glob("shard-*.time.bin"))
        segment.write_bytes(segment.read_bytes()[:-8])
        with pytest.raises(TrustStoreError, match=re.escape(str(segment))):
            restore_trust_store(tmp_path)

    def test_missing_manifest_names_manifest(self, tmp_path):
        with pytest.raises(
            TrustStoreError,
            match=re.escape(str(tmp_path / "manifest.json")),
        ):
            restore_trust_store(tmp_path)


class TestAtomicSnapshot:
    """Snapshots land via temp-sibling + fsync + atomic rename: an
    interrupted re-snapshot never destroys the previous good one."""

    def test_no_tmp_or_old_residue(self, tmp_path):
        engine, _ = _build_world()
        target = tmp_path / "store"
        snapshot_trust_store(target, engine.table, engine.reputation.weights)
        snapshot_trust_store(target, engine.table, engine.reputation.weights)
        residue = [p.name for p in tmp_path.iterdir() if p.name != "store"]
        assert residue == []

    def test_interrupted_overwrite_keeps_previous_snapshot(self, tmp_path):
        from repro.core.journal import set_sync_hook

        engine, entities = _build_world()
        target = tmp_path / "store"
        snapshot_trust_store(target, engine.table, engine.reputation.weights)
        before = (target / "manifest.json").read_bytes()
        engine.table.record(entities[0], entities[1], CONTEXTS[0], 0.9, 99.0)

        class Boom(BaseException):
            pass

        calls = 0

        def hook(phase, kind, path):
            nonlocal calls
            if calls == 0 and phase == "before":
                calls += 1
                raise Boom

        set_sync_hook(hook)
        try:
            with pytest.raises(Boom):
                snapshot_trust_store(
                    target, engine.table, engine.reputation.weights
                )
        finally:
            set_sync_hook(None)
        # The first fsync died before any rename: the old snapshot is
        # untouched and still restores.
        assert (target / "manifest.json").read_bytes() == before
        restore_trust_store(target)

    def test_leftover_tmp_from_crash_is_cleaned(self, tmp_path):
        engine, _ = _build_world()
        target = tmp_path / "store"
        stale = tmp_path / "store.tmp"
        stale.mkdir()
        (stale / "junk.bin").write_bytes(b"\x00" * 16)
        snapshot_trust_store(target, engine.table, engine.reputation.weights)
        assert not stale.exists()
        restore_trust_store(target)
