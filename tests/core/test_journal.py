"""Unit tests for the trust-plane write-ahead journal.

Covers the frame codec (CRC32C vectors, torn/short/corrupt tails),
:class:`~repro.core.journal.JournalWriter` round trips and pinned-prefix
refusal, replay epoch verification, the grid sidecar, and
:class:`~repro.core.journal.DurableTrustPlane` lifecycle — create,
recover, checkpoint, compaction, generation retention, and rollback to a
pinned generation.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.core.context import TrustContext
from repro.core.journal import (
    GRID_SIDECAR_SCHEMA,
    JOURNAL_SCHEMA,
    DurableTrustPlane,
    JournalConfig,
    JournalWriter,
    TrustJournalError,
    apply_op,
    crc32c,
    read_journal,
)
from repro.core.recommender import RecommenderWeights
from repro.core.tables import TrustTable
from repro.grid.trust_table import GridTrustTable
from repro.obs import MetricsRegistry

EXECUTE = TrustContext("execute")
_FRAME = struct.Struct("<II")


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), crc32c(payload)) + payload


def _raw_journal(tmp_path, payloads, name="j.wal"):
    path = tmp_path / name
    header = json.dumps(
        {"op": "header", "schema": JOURNAL_SCHEMA, "base": None}
    ).encode()
    blob = _frame(header) + b"".join(_frame(p) for p in payloads)
    path.write_bytes(blob)
    return path


class TestCrc32c:
    def test_check_vector(self):
        # RFC 3720 test vector for the Castagnoli polynomial.
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_and_incremental(self):
        assert crc32c(b"") == 0
        assert crc32c(b"ab") != crc32c(b"ba")


class TestFrameCodec:
    def test_round_trip(self, tmp_path):
        ops = [{"op": "record", "z": "a", "y": "b", "c": "execute",
                "v": 0.5, "t": 1.0, "n": 1, "d": "a", "e": 1}]
        path = _raw_journal(
            tmp_path, [json.dumps(o, sort_keys=True).encode() for o in ops]
        )
        replay = read_journal(path)
        assert replay.ops == tuple(ops)
        assert not replay.truncated
        assert replay.valid_bytes == path.stat().st_size

    def test_short_header_truncates_to_zero_ops(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_bytes(b"\x04\x00")  # half a frame header
        replay = read_journal(path)
        assert replay.truncated
        assert replay.header is None
        assert replay.ops == ()
        assert replay.valid_bytes == 0

    def test_torn_payload_truncates(self, tmp_path):
        path = _raw_journal(tmp_path, [b'{"op": "remove", "z": "a"}'])
        good = path.stat().st_size
        path.write_bytes(path.read_bytes() + _frame(b'{"op": "x"}')[:-3])
        replay = read_journal(path)
        assert replay.truncated
        assert replay.valid_bytes == good
        assert len(replay.ops) == 1

    def test_crc_mismatch_truncates(self, tmp_path):
        payload = b'{"op": "remove", "z": "a"}'
        path = _raw_journal(tmp_path, [payload])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # corrupt the last payload byte
        path.write_bytes(bytes(data))
        replay = read_journal(path)
        assert replay.truncated
        assert replay.reason is not None and "crc" in replay.reason.lower()
        assert replay.ops == ()

    def test_all_zero_tail_is_torn_not_fatal(self, tmp_path):
        # crc32c(b"") == 0, so a zeroed region decodes as a "valid" empty
        # frame; the undecodable-JSON rule must classify it as torn.
        path = _raw_journal(tmp_path, [b'{"op": "remove", "z": "a"}'])
        good = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\x00" * 64)
        replay = read_journal(path)
        assert replay.truncated
        assert replay.valid_bytes == good

    def test_wrong_schema_refused(self, tmp_path):
        path = tmp_path / "j.wal"
        header = json.dumps({"op": "header", "schema": "bogus/v9"}).encode()
        path.write_bytes(_frame(header))
        with pytest.raises(TrustJournalError, match="schema"):
            read_journal(path)

    def test_base_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.wal"
        header = json.dumps(
            {"op": "header", "schema": JOURNAL_SCHEMA, "base": "aa" * 32}
        ).encode()
        path.write_bytes(_frame(header))
        with pytest.raises(TrustJournalError, match="base"):
            read_journal(path, expected_base="bb" * 32)

    def test_torn_frames_counter(self, tmp_path):
        path = _raw_journal(tmp_path, [b'{"op": "remove", "z": "a"}'])
        path.write_bytes(path.read_bytes() + b"\xff\xff\xff\xff")
        metrics = MetricsRegistry()
        read_journal(path, metrics=metrics)
        assert metrics.counter("store.torn_frames").value == 1


class TestPinnedPrefix:
    def test_upto_beyond_file_refused(self, tmp_path):
        path = _raw_journal(tmp_path, [b'{"op": "remove", "z": "a"}'])
        with pytest.raises(TrustJournalError, match="pinned"):
            read_journal(path, upto=path.stat().st_size + 100)

    def test_tear_inside_pin_refused(self, tmp_path):
        path = _raw_journal(tmp_path, [b'{"op": "remove", "z": "a"}'])
        size = path.stat().st_size
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TrustJournalError, match="pinned"):
            read_journal(path, upto=size)

    def test_tear_beyond_pin_ignored(self, tmp_path):
        path = _raw_journal(
            tmp_path,
            [b'{"op": "remove", "z": "a"}', b'{"op": "remove", "z": "b"}'],
        )
        size = path.stat().st_size
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # tear only the second op
        path.write_bytes(bytes(data))
        pin = size - len(_frame(b'{"op": "remove", "z": "b"}'))
        # Bytes past the pin belong to an abandoned timeline: the torn
        # frame there is sliced away, not even inspected.
        replay = read_journal(path, upto=pin)
        assert not replay.truncated
        assert replay.valid_bytes == pin
        assert len(replay.ops) == 1


class TestJournalWriter:
    def test_append_sync_round_trip(self, tmp_path):
        path = tmp_path / "j.wal"
        w = JournalWriter.create(path)
        op = {"op": "declare", "g": "g0", "m": ["a", "b"], "e": 1}
        w.append(op)
        assert w.pending_bytes > 0
        w.sync()
        assert w.pending_bytes == 0
        w.close()
        assert read_journal(path).ops == (op,)

    def test_unsynced_appends_not_durable(self, tmp_path):
        path = tmp_path / "j.wal"
        w = JournalWriter.create(path)
        w.append({"op": "dissolve", "g": "g0", "e": 1})
        offset = w.synced_offset
        w.abandon()  # simulate a crash: buffered bytes are lost
        replay = read_journal(path)
        assert replay.ops == ()
        assert replay.valid_bytes == offset

    def test_open_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "j.wal"
        w = JournalWriter.create(path)
        w.append({"op": "dissolve", "g": "g0", "e": 1})
        w.sync()
        w.close()
        path.write_bytes(path.read_bytes() + b"\x01\x02\x03")
        w = JournalWriter.open(path)
        assert path.stat().st_size == w.synced_offset
        w.append({"op": "dissolve", "g": "g1", "e": 2})
        w.sync()
        w.close()
        assert [o["g"] for o in read_journal(path).ops] == ["g0", "g1"]

    def test_append_validates_field_types(self, tmp_path):
        w = JournalWriter.create(tmp_path / "j.wal")
        with pytest.raises(TrustJournalError):
            w.append({"op": "declare", "g": object(), "e": 1})
        w.close()

    def test_metrics_counter(self, tmp_path):
        metrics = MetricsRegistry()
        w = JournalWriter.create(tmp_path / "j.wal", metrics=metrics)
        w.append({"op": "dissolve", "g": "g0", "e": 1})
        w.sync()
        w.close()
        assert metrics.counter("store.journal_appends").value == 1


class TestApplyOp:
    def test_epoch_mismatch_detected(self, tmp_path):
        table = TrustTable()
        weights = RecommenderWeights()
        grid = GridTrustTable(2, 2, 2)
        op = {"op": "record", "z": "a", "y": "b", "c": "execute",
              "v": 0.5, "t": 1.0, "n": 1, "d": "a", "e": 99}
        with pytest.raises(TrustJournalError, match="epoch"):
            apply_op(
                op, table=table, weights=weights, alliances=None,
                grid_table=grid, path=tmp_path / "j.wal", index=1,
            )

    def test_unknown_op_refused(self, tmp_path):
        with pytest.raises(TrustJournalError, match="unknown"):
            apply_op(
                {"op": "frobnicate", "e": 0},
                table=TrustTable(), weights=RecommenderWeights(),
                alliances=None, grid_table=None,
                path=tmp_path / "j.wal", index=1,
            )

    def test_remove_missing_key_refused(self, tmp_path):
        op = {"op": "remove", "z": "a", "y": "b", "c": "execute",
              "d": "a", "e": 1}
        with pytest.raises(TrustJournalError):
            apply_op(
                op, table=TrustTable(), weights=RecommenderWeights(),
                alliances=None, grid_table=None,
                path=tmp_path / "j.wal", index=1,
            )


def _plane(tmp_path, **kwargs):
    table = TrustTable()
    weights = RecommenderWeights()
    grid = GridTrustTable(2, 3, 2)
    return DurableTrustPlane.create(
        tmp_path / "plane", table, weights, grid_table=grid, **kwargs
    )


class TestDurableTrustPlane:
    def test_create_recover_empty(self, tmp_path):
        plane = _plane(tmp_path)
        plane.close()
        rec = DurableTrustPlane.recover(tmp_path / "plane")
        assert rec.recovered_ops == 0
        assert rec.generation == 0
        rec.close()

    def test_mutations_replay(self, tmp_path):
        plane = _plane(tmp_path)
        plane.table.record("a", "b", EXECUTE, 0.7, 1.0)
        plane.weights.observe_outcome("a", 0.8, 0.6)
        plane.weights.alliances.declare("g0", ["a", "b"])
        plane.grid_table.set(0, 1, 0, 3)
        plane.checkpoint()
        plane.close()
        rec = DurableTrustPlane.recover(tmp_path / "plane")
        assert rec.recovered_ops == 4
        assert rec.table.get("a", "b", EXECUTE).value == 0.7
        assert "a" in rec.weights._accuracy
        assert sorted(rec.weights.alliances._groups["g0"]) == ["a", "b"]
        assert int(rec.grid_table.levels[0, 1, 0]) == 3
        # Epoch counters restore exactly, not merely >= replay counts.
        assert rec.table.epoch == plane.table.epoch
        assert rec.grid_table.epoch == plane.grid_table.epoch
        rec.close()

    def test_unsynced_tail_lost_on_recovery(self, tmp_path):
        plane = _plane(tmp_path)
        plane.table.record("a", "b", EXECUTE, 0.7, 1.0)
        plane.checkpoint()
        plane.table.record("a", "c", EXECUTE, 0.9, 2.0)  # never synced
        rec = DurableTrustPlane.recover(tmp_path / "plane")
        assert rec.recovered_ops == 1
        assert rec.table.get("a", "c", EXECUTE) is None
        rec.close()

    def test_grid_sidecar_written_and_restored(self, tmp_path):
        plane = _plane(tmp_path)
        sidecar = tmp_path / "plane" / "base-0" / "grid.json"
        data = json.loads(sidecar.read_text())
        assert data["schema"] == GRID_SIDECAR_SCHEMA
        assert data["shape"] == [2, 3, 2]
        plane.close()

    def test_compaction_folds_tail_and_prunes(self, tmp_path):
        plane = _plane(
            tmp_path,
            config=JournalConfig(keep_generations=0, min_compact_bytes=1 << 30),
        )
        for i in range(6):
            plane.table.record("a", f"b{i}", EXECUTE, 0.5, float(i + 1))
        plane.checkpoint()
        plane.compact()
        root = tmp_path / "plane"
        assert json.loads((root / "CURRENT").read_text())["generation"] == 1
        assert not (root / "base-0").exists()
        assert not (root / "journal-0.wal").exists()
        plane.table.record("a", "z", EXECUTE, 0.9, 9.0)
        plane.checkpoint()
        plane.close()
        rec = DurableTrustPlane.recover(root)
        assert rec.generation == 1
        assert rec.recovered_ops == 1  # only the post-compaction op replays
        assert rec.table.get("a", "z", EXECUTE).value == 0.9
        assert rec.table.get("a", "b3", EXECUTE).value == 0.5
        rec.close()

    def test_auto_compaction_on_checkpoint(self, tmp_path):
        plane = _plane(
            tmp_path,
            config=JournalConfig(compact_ratio=1e-9, min_compact_bytes=1),
        )
        plane.table.record("a", "b", EXECUTE, 0.5, 1.0)
        plane.checkpoint()
        assert plane.generation >= 1
        plane.close()

    def test_recover_pinned_generation_rolls_back(self, tmp_path):
        plane = _plane(
            tmp_path, config=JournalConfig(min_compact_bytes=1 << 30)
        )
        plane.table.record("a", "b", EXECUTE, 0.5, 1.0)
        pin = plane.checkpoint()
        plane.table.record("a", "c", EXECUTE, 0.6, 2.0)
        plane.checkpoint()
        plane.compact()
        plane.close()
        rec = DurableTrustPlane.recover(
            tmp_path / "plane",
            generation=pin["generation"],
            upto=pin["offset"],
        )
        assert rec.generation == pin["generation"] == 0
        assert rec.recovered_ops == 1
        assert rec.table.get("a", "c", EXECUTE) is None
        # The abandoned newer generation is dropped from disk.
        assert not (tmp_path / "plane" / "base-1").exists()
        rec.close()

    def test_recover_missing_current_refused(self, tmp_path):
        (tmp_path / "plane").mkdir()
        with pytest.raises(TrustJournalError, match="CURRENT"):
            DurableTrustPlane.recover(tmp_path / "plane")

    def test_checkpoint_payload_shape(self, tmp_path):
        plane = _plane(tmp_path)
        payload = plane.checkpoint()
        assert payload["schema"] == JOURNAL_SCHEMA
        assert payload["generation"] == 0
        assert payload["offset"] == plane.journal_offset
        assert payload["base_sha256"] == plane.base_digest
        plane.close()

    def test_recoveries_counter(self, tmp_path):
        plane = _plane(tmp_path)
        plane.close()
        metrics = MetricsRegistry()
        rec = DurableTrustPlane.recover(tmp_path / "plane", metrics=metrics)
        assert metrics.counter("store.recoveries").value == 1
        rec.close()
