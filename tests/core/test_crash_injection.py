"""In-process crash-injection property tests for the trust journal.

The subprocess harness (``tools/crash_harness.py``) is the
ground-truth sweep — it really ``os._exit``-s mid-write.  These tests
cover the same recovery-equivalence contract at hypothesis scale by
raising out of the fsync hook instead of killing the process: a raise at
a sync boundary aborts the workload exactly where a crash would, the
plane object is discarded un-closed, and recovery runs against whatever
bytes reached the disk.  Random op sequences × random kill points, plus
torn-tail truncation and bit-flip sweeps over completed journals.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.journal import (
    DurableTrustPlane,
    JournalConfig,
    TrustJournalError,
    set_sync_hook,
)

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

from crash_harness import (  # noqa: E402
    assert_equivalent,
    build_workload,
    apply_workload_op,
    fresh_state,
    oracle_prefix,
)


class _SimulatedCrash(BaseException):
    """Raised out of the sync hook; BaseException so nothing absorbs it."""


@pytest.fixture(autouse=True)
def _clean_hook():
    yield
    set_sync_hook(None)


def _run_until_crash(root, ops, sync_every, crash_at):
    """Drive the workload, aborting at the ``crash_at``-th fsync boundary.

    Returns the number of ops acknowledged by a completed checkpoint
    before the crash (the durability floor), or ``None`` when the
    workload ran to completion without hitting ``crash_at``.
    """
    events = 0

    def hook(phase, kind, path):
        nonlocal events
        if events == crash_at:
            raise _SimulatedCrash
        events += 1

    acked = 0
    set_sync_hook(hook)
    try:
        table, weights, grid = fresh_state()
        plane = DurableTrustPlane.create(
            root, table, weights, grid_table=grid,
            config=JournalConfig(min_compact_bytes=1 << 30),
        )
        for i, op in enumerate(ops):
            apply_workload_op(op, table, weights, grid)
            if (i + 1) % sync_every == 0:
                plane.checkpoint()
                acked = i + 1
        plane.checkpoint()
        acked = len(ops)
    except _SimulatedCrash:
        return acked
    finally:
        set_sync_hook(None)
    plane.close()
    return None


def _verify_recovery(root, ops, acked, label):
    try:
        plane = DurableTrustPlane.recover(root)
    except TrustJournalError:
        assert acked == 0, f"{label}: refused after {acked} acked ops"
        return
    n = plane.recovered_ops
    assert 0 <= n <= len(ops), f"{label}: recovered {n} of {len(ops)}"
    assert n >= acked, (
        f"{label}: durability floor violated — recovered {n}, acked {acked}"
    )
    assert_equivalent(
        (plane.table, plane.weights, plane.grid_table),
        oracle_prefix(ops, n),
        label,
    )
    plane.close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2**16),
    n_ops=st.integers(5, 40),
    sync_every=st.integers(1, 9),
    crash_at=st.integers(0, 200),
)
def test_random_kill_points_recover_equivalently(
    tmp_path_factory, seed, n_ops, sync_every, crash_at
):
    root = tmp_path_factory.mktemp("crash") / "plane"
    ops = build_workload(seed, n_ops)
    acked = _run_until_crash(root, ops, sync_every, crash_at)
    if acked is None:
        acked = len(ops)  # ran clean: everything is acknowledged
    _verify_recovery(root, ops, acked, f"seed={seed} k={crash_at}")


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2**16),
    cut=st.floats(0.0, 1.0),
)
def test_torn_truncation_recovers_some_prefix(tmp_path_factory, seed, cut):
    root = tmp_path_factory.mktemp("torn") / "plane"
    ops = build_workload(seed, 20)
    table, weights, grid = fresh_state()
    plane = DurableTrustPlane.create(
        root, table, weights, grid_table=grid,
        config=JournalConfig(min_compact_bytes=1 << 30),
    )
    for op in ops:
        apply_workload_op(op, table, weights, grid)
    plane.checkpoint()
    plane.close()
    journal = root / "journal-0.wal"
    size = journal.stat().st_size
    with journal.open("r+b") as fh:
        fh.truncate(int(cut * size))
    # Truncation happened after the last ack, so the floor is void: the
    # contract is graceful settling on an intact prefix, never refusal.
    _verify_recovery(root, ops, 0, f"seed={seed} cut={cut:.3f}")


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2**16),
    where=st.floats(0.0, 1.0),
    bit=st.integers(0, 7),
)
def test_bit_flip_recovers_some_prefix(tmp_path_factory, seed, where, bit):
    root = tmp_path_factory.mktemp("flip") / "plane"
    ops = build_workload(seed, 20)
    table, weights, grid = fresh_state()
    plane = DurableTrustPlane.create(
        root, table, weights, grid_table=grid,
        config=JournalConfig(min_compact_bytes=1 << 30),
    )
    for op in ops:
        apply_workload_op(op, table, weights, grid)
    plane.checkpoint()
    plane.close()
    journal = root / "journal-0.wal"
    data = bytearray(journal.read_bytes())
    pos = min(int(where * len(data)), len(data) - 1)
    data[pos] ^= 1 << bit
    journal.write_bytes(bytes(data))
    _verify_recovery(root, ops, 0, f"seed={seed} flip@{pos}.{bit}")
