"""Tests for trust contexts."""

import pytest

from repro.core.context import (
    DEFAULT_CONTEXTS,
    DISPLAY,
    EXECUTION,
    PRINTING,
    STORAGE,
    TrustContext,
)


class TestTrustContext:
    def test_equality_by_name(self):
        assert TrustContext("execute") == TrustContext("execute", "different desc")
        # description participates in equality only through frozen dataclass
        # semantics when both fields differ; name alone must not collide.
        assert TrustContext("execute") != TrustContext("store")

    def test_hashable(self):
        contexts = {TrustContext("a"), TrustContext("a"), TrustContext("b")}
        assert len(contexts) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TrustContext("")

    def test_str(self):
        assert str(EXECUTION) == "execute"

    def test_paper_example_contexts_present(self):
        assert set(DEFAULT_CONTEXTS) == {EXECUTION, STORAGE, PRINTING, DISPLAY}
        names = {c.name for c in DEFAULT_CONTEXTS}
        assert names == {"execute", "store", "print", "display"}
