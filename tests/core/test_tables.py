"""Tests for repro.core.tables (DTT/RTT) and level/value conversion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.context import EXECUTION, STORAGE
from repro.core.levels import TrustLevel
from repro.core.tables import TrustRecord, TrustTable, level_to_value, value_to_level
from repro.errors import UnknownEntityError


class TestConversions:
    @pytest.mark.parametrize(
        "value,level",
        [(0.0, TrustLevel.A), (0.17, TrustLevel.B), (0.5, TrustLevel.D), (1.0, TrustLevel.F)],
    )
    def test_value_to_level(self, value, level):
        assert value_to_level(value) is level

    def test_value_out_of_range(self):
        with pytest.raises(ValueError):
            value_to_level(1.2)
        with pytest.raises(ValueError):
            value_to_level(-0.1)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_value_to_level_total(self, v):
        assert value_to_level(v) in TrustLevel

    @pytest.mark.parametrize("level", list(TrustLevel))
    def test_roundtrip_through_midpoint(self, level):
        assert value_to_level(level_to_value(level)) is level


class TestTrustRecord:
    def test_level_property(self):
        rec = TrustRecord(value=0.9, last_transaction=10.0)
        assert rec.level is TrustLevel.F

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            TrustRecord(value=1.5, last_transaction=0.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            TrustRecord(value=0.5, last_transaction=0.0, transaction_count=-1)


class TestTrustTable:
    def test_record_and_get(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.8, time=5.0)
        rec = table.get("x", "y", EXECUTION)
        assert rec is not None
        assert rec.value == 0.8
        assert rec.last_transaction == 5.0

    def test_get_missing_returns_none(self):
        assert TrustTable().get("x", "y", EXECUTION) is None

    def test_require_missing_raises(self):
        with pytest.raises(UnknownEntityError):
            TrustTable().require("x", "y", EXECUTION)

    def test_contexts_are_independent(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.9, time=1.0)
        table.record("x", "y", STORAGE, 0.1, time=1.0)
        assert table.get("x", "y", EXECUTION).value == 0.9
        assert table.get("x", "y", STORAGE).value == 0.1

    def test_self_trust_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            TrustTable().record("x", "x", EXECUTION, 0.5, time=0.0)

    def test_overwrite_replaces(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.2, time=1.0)
        table.record("x", "y", EXECUTION, 0.7, time=2.0)
        assert table.get("x", "y", EXECUTION).value == 0.7
        assert len(table) == 1

    def test_remove(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.2, time=1.0)
        table.remove("x", "y", EXECUTION)
        assert table.get("x", "y", EXECUTION) is None
        with pytest.raises(KeyError):
            table.remove("x", "y", EXECUTION)

    def test_recommenders_exclude_asker_and_other_targets(self):
        table = TrustTable()
        table.record("a", "y", EXECUTION, 0.5, time=1.0)
        table.record("b", "y", EXECUTION, 0.6, time=1.0)
        table.record("c", "z", EXECUTION, 0.7, time=1.0)  # different target
        table.record("x", "y", EXECUTION, 0.8, time=1.0)  # the asker's own view
        got = dict(
            (z, rec.value) for z, rec in table.recommenders("y", EXECUTION, excluding="x")
        )
        assert got == {"a": 0.5, "b": 0.6}

    def test_entities_tracks_both_sides(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.5, time=1.0)
        assert table.entities() == {"x", "y"}

    def test_iteration_and_items(self):
        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.5, time=1.0)
        keys = list(table)
        assert keys == [("x", "y", EXECUTION)]
        items = list(table.items())
        assert items[0][0] == ("x", "y", EXECUTION)
        assert ("x", "y", EXECUTION) in table


class TestDomainEpochs:
    """Per-domain mutation counters: the shard-invalidation contract."""

    def _table(self):
        from repro.core.domains import DomainMap

        # One domain per trustee, so bucket behaviour is deterministic.
        return TrustTable(domains=DomainMap(domain_of=lambda e: str(e)))

    def test_record_bumps_the_trustee_domain_only(self):
        table = self._table()
        table.record("x", "y", EXECUTION, 0.5, 1.0)
        assert table.domain_epoch("y") == 1
        assert table.domain_epoch("x") == 0
        table.record("z", "y", EXECUTION, 0.6, 2.0)
        assert table.domain_epoch("y") == 2
        assert table.domain_epoch("z") == 0

    def test_remove_bumps_the_trustee_domain(self):
        table = self._table()
        table.record("x", "y", EXECUTION, 0.5, 1.0)
        table.record("x", "w", EXECUTION, 0.5, 1.0)
        table.remove("x", "y", EXECUTION)
        assert table.domain_epoch("y") == 2
        assert table.domain_epoch("w") == 1

    def test_domains_present_tracks_live_buckets(self):
        table = self._table()
        assert table.domains_present() == ()
        table.record("x", "y", EXECUTION, 0.5, 1.0)
        table.record("x", "w", EXECUTION, 0.5, 1.0)
        assert table.domains_present() == ("y", "w")
        table.remove("x", "y", EXECUTION)
        assert table.domains_present() == ("w",)

    def test_domain_records_preserves_insertion_order(self):
        from repro.core.domains import DomainMap

        # Two trustees share one bucket: their records interleave in the
        # global insertion order, which the bucket must preserve.
        table = TrustTable(domains=DomainMap(domain_of=lambda e: "all"))
        table.record("a", "y", EXECUTION, 0.1, 1.0)
        table.record("a", "w", EXECUTION, 0.2, 2.0)
        table.record("b", "y", STORAGE, 0.3, 3.0)
        keys = [key for key, _ in table.domain_records("all")]
        assert keys == [
            ("a", "y", EXECUTION), ("a", "w", EXECUTION), ("b", "y", STORAGE),
        ]
        # Overwriting keeps the key's original position.
        table.record("a", "y", EXECUTION, 0.9, 4.0)
        assert [key for key, _ in table.domain_records("all")][0] == (
            "a", "y", EXECUTION,
        )

    def test_global_epoch_still_advances(self):
        table = self._table()
        before = table.epoch
        table.record("x", "y", EXECUTION, 0.5, 1.0)
        assert table.epoch == before + 1

    def test_crc32_default_is_process_stable(self):
        import zlib

        table = TrustTable()
        table.record("x", "y", EXECUTION, 0.5, 1.0)
        expected = zlib.crc32(b"y") % table.domains.n_shards
        assert table.domain_of("y") == expected
