"""Tests for trust-state persistence."""

import pytest

from repro.core.context import EXECUTION, STORAGE, TrustContext
from repro.core.persistence import (
    load_trust_state,
    save_trust_state,
    trust_table_from_dict,
    trust_table_to_dict,
)
from repro.core.recommender import RecommenderWeights
from repro.core.tables import TrustTable
from repro.errors import TrustModelError


@pytest.fixture
def table() -> TrustTable:
    t = TrustTable()
    t.record("cd:0", "rd:1", EXECUTION, 0.8, time=5.0, transaction_count=3)
    t.record("cd:0", "rd:2", STORAGE, 0.3, time=7.0)
    t.record("rd:1", "cd:0", EXECUTION, 0.6, time=9.0)
    return t


class TestRoundTrip:
    def test_entries_survive(self, table):
        rebuilt = trust_table_from_dict(trust_table_to_dict(table))
        assert len(rebuilt) == len(table)
        rec = rebuilt.get("cd:0", "rd:1", EXECUTION)
        assert rec.value == 0.8
        assert rec.last_transaction == 5.0
        assert rec.transaction_count == 3

    def test_contexts_match_by_name(self, table):
        rebuilt = trust_table_from_dict(trust_table_to_dict(table))
        # A freshly constructed context with the same name resolves.
        assert rebuilt.get("cd:0", "rd:2", TrustContext("store")) is not None

    def test_file_round_trip(self, table, tmp_path):
        path = save_trust_state(tmp_path / "trust.json", table)
        rebuilt = load_trust_state(path)
        assert rebuilt.get("rd:1", "cd:0", EXECUTION).value == 0.6

    def test_weights_round_trip(self, table, tmp_path):
        weights = RecommenderWeights(learning_rate=0.5)
        weights.observe_outcome("cd:0", 1.0, 0.0)
        path = save_trust_state(tmp_path / "t.json", table, weights)
        restored = RecommenderWeights()
        load_trust_state(path, restored)
        assert restored.accuracy("cd:0") == pytest.approx(weights.accuracy("cd:0"))


class TestValidation:
    def test_non_string_entities_rejected(self):
        t = TrustTable()
        t.record(0, 1, EXECUTION, 0.5, time=1.0)
        with pytest.raises(TrustModelError, match="string"):
            trust_table_to_dict(t)

    def test_unknown_version_rejected(self, table):
        data = trust_table_to_dict(table)
        data["format_version"] = 99
        with pytest.raises(TrustModelError, match="version"):
            trust_table_from_dict(data)


class TestSessionCheckpoint:
    def test_session_trust_state_resumable(self, tmp_path):
        """Checkpoint a session's internal table and resume it."""
        from repro.grid import BehaviorModel, GridSession
        from repro.scheduling import TrustPolicy
        from repro.workloads import ScenarioSpec, materialize

        grid = materialize(ScenarioSpec(cd_range=(2, 2), rd_range=(2, 2)), seed=1).grid
        session = GridSession(
            grid=grid,
            behavior=BehaviorModel.uniform(0.9),
            policy=TrustPolicy.aware(),
            seed=4,
        )
        session.run(rounds=2, requests_per_round=15)
        path = save_trust_state(tmp_path / "ckpt.json", session.fleet.internal_table)
        restored = load_trust_state(path)
        assert len(restored) == len(session.fleet.internal_table)
        for key, rec in session.fleet.internal_table.items():
            other = restored.get(*key)
            assert other is not None
            assert other.value == pytest.approx(rec.value)
