"""Tests for repro.core.ets — Table 1 semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ets import EtsTable, TC_MAX, TC_MIN, expected_trust_supplement, trust_cost
from repro.core.levels import TrustLevel

rtl_ints = st.integers(min_value=1, max_value=6)
otl_ints = st.integers(min_value=1, max_value=5)


class TestExpectedTrustSupplement:
    def test_zero_when_offer_meets_requirement(self):
        assert expected_trust_supplement("B", "B") == 0
        assert expected_trust_supplement("A", "E") == 0

    def test_shortfall_is_level_difference(self):
        assert expected_trust_supplement("D", "B") == 2
        assert expected_trust_supplement("E", "A") == 4

    def test_f_row_forces_maximum(self):
        for otl in "ABCDE":
            assert expected_trust_supplement("F", otl) == 6

    def test_f_row_without_override(self):
        assert expected_trust_supplement("F", "E", f_forces_max=False) == 1
        assert expected_trust_supplement("F", "A", f_forces_max=False) == 5

    def test_otl_f_rejected(self):
        with pytest.raises(ValueError, match="cannot be F"):
            expected_trust_supplement("A", "F")

    def test_trust_cost_is_alias(self):
        assert trust_cost is expected_trust_supplement

    @given(rtl_ints, otl_ints)
    def test_bounds(self, rtl, otl):
        tc = expected_trust_supplement(rtl, otl)
        assert TC_MIN <= tc <= TC_MAX

    @given(rtl_ints, otl_ints, otl_ints)
    def test_monotone_in_offer(self, rtl, otl_a, otl_b):
        """A better offer never increases the supplement."""
        lo, hi = sorted((otl_a, otl_b))
        assert expected_trust_supplement(rtl, hi) <= expected_trust_supplement(rtl, lo)

    @given(rtl_ints, rtl_ints, otl_ints)
    def test_monotone_in_requirement(self, rtl_a, rtl_b, otl):
        """A stricter requirement never decreases the supplement."""
        lo, hi = sorted((rtl_a, rtl_b))
        assert expected_trust_supplement(hi, otl) >= expected_trust_supplement(lo, otl)


class TestEtsTable:
    def test_matrix_matches_scalar_function(self):
        table = EtsTable()
        for rtl in range(1, 7):
            for otl in range(1, 6):
                assert table.lookup(rtl, otl) == expected_trust_supplement(rtl, otl)

    def test_matrix_is_read_only(self):
        table = EtsTable()
        with pytest.raises(ValueError):
            table.matrix[0, 0] = 99

    def test_lookup_many_vectorised(self):
        table = EtsTable()
        rtls = np.array([1, 6, 4])
        otls = np.array([5, 5, 2])
        assert table.lookup_many(rtls, otls).tolist() == [0, 6, 2]

    def test_lookup_many_rejects_out_of_range(self):
        table = EtsTable()
        with pytest.raises(ValueError):
            table.lookup_many(np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            table.lookup_many(np.array([1]), np.array([6]))

    def test_lookup_rejects_offered_f(self):
        with pytest.raises(ValueError):
            EtsTable().lookup(TrustLevel.A, TrustLevel.F)

    def test_no_override_table(self):
        table = EtsTable(f_forces_max=False)
        assert table.lookup("F", "E") == 1
        assert table.lookup("F", "A") == 5

    def test_render_has_paper_layout(self):
        text = EtsTable().render()
        lines = text.splitlines()
        assert lines[0].startswith("requested TL")
        # Six level rows + header + separator
        assert len(lines) == 8
        assert "F" in lines[-1]
        assert "E - D" in text  # one representative supplement cell

    def test_mean_trust_cost(self):
        # Hand-computed mean of the canonical matrix: row sums 0,1,3,6,10,30.
        assert EtsTable().mean_trust_cost == pytest.approx(50 / 30)
