"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "10"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["table", "4", "--workers", "0"],
            ["tables", "--workers", "0"],
            ["report", "--workers", "-1"],
            ["families", "--workers", "0"],
            ["faults", "--workers", "-3"],
            ["trustfaults", "--workers", "0"],
        ],
    )
    def test_workers_must_be_positive(self, argv, capsys):
        # Regression: 0/negative --workers used to reach the executor and
        # crash there; argparse now rejects it up front.
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)
        assert "expected a positive integer" in capsys.readouterr().err


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "requested TL" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "scp" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table", "3"]) == 0
        assert "1000 Mbps" in capsys.readouterr().out

    def test_scheduling_table_small(self, capsys):
        assert main(["table", "4", "--replications", "2"]) == 0
        out = capsys.readouterr().out
        assert "Using trust" in out
        assert "Improvement" in out

    def test_sfi(self, capsys):
        assert main(["sfi"]) == 0
        assert "MiSFIT" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "trust level table" in capsys.readouterr().out

    def test_theorem(self, capsys):
        assert main(["theorem", "mct", "--trials", "3"]) == 0
        assert "makespan dominance" in capsys.readouterr().out

    def test_run(self, capsys):
        assert main(["run", "--heuristic", "mct", "--tasks", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "trust-aware" in out
        assert "improvement" in out

    def test_run_batch_heuristic(self, capsys):
        assert main(["run", "--heuristic", "min-min", "--tasks", "10"]) == 0
        assert "improvement" in capsys.readouterr().out

    def test_heuristics_listing(self, capsys):
        assert main(["heuristics"]) == 0
        out = capsys.readouterr().out
        assert "mct" in out and "[batch ]" in out and "[online]" in out

    def test_save_and_replay_scenario(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        assert main(["save-scenario", str(path), "--tasks", "15", "--seed", "2"]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["replay", str(path), "--heuristic", "sufferage"]) == 0
        out = capsys.readouterr().out
        assert "improvement" in out

    def test_profile_paper_scenario(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "prof"
        assert main([
            "profile", "paper",
            "--heuristic", "min-min", "--tasks", "12", "--seed", "3",
            "--output-dir", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "Metrics:" in out
        assert "sched.map_latency_s.min-min" in out
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["schema"] == "repro.obs/manifest-v1"
        assert manifest["results"]["completed"] == 12
        assert (out_dir / "trace.jsonl").exists()
        assert (out_dir / "trace.chrome.json").exists()

    def test_profile_saved_scenario(self, tmp_path, capsys):
        scenario = tmp_path / "scenario.json"
        assert main(["save-scenario", str(scenario), "--tasks", "8", "--seed", "4"]) == 0
        capsys.readouterr()
        out_dir = tmp_path / "prof"
        assert main(["profile", str(scenario), "--output-dir", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "sched.mappings" in out
        assert (out_dir / "manifest.json").exists()

    def test_profile_missing_scenario_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["profile", str(tmp_path / "nope.json")])

    def test_serve_smoke(self, capsys):
        assert main([
            "serve", "--tasks", "30", "--seed", "1",
            "--queue-capacity", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "service drained" in out
        assert "30 submitted" in out

    def test_serve_writes_checkpoint(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "svc.json"
        assert main([
            "serve", "--tasks", "30", "--seed", "1",
            "--checkpoint-every", "1", "--checkpoint-out", str(out_path),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["schema"] == "repro.service.checkpoint/v1"

    def test_serve_unknown_scenario_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["serve", str(tmp_path / "missing.json")])

    def test_trustfaults_study(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "study.json"
        assert main([
            "trustfaults", "--rounds", "2", "--requests", "6",
            "--artifact", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "honest" in out and "attacked" in out and "defended" in out
        assert "reputation-error recovery" in out
        data = json.loads(artifact.read_text())
        assert data["schema"] == "repro.trustfaults/v1"
        assert set(data["arms"]) == {"honest", "attacked", "defended"}
