"""Tests for outcome-driven credibility purging."""

import pytest

from repro.core.context import TrustContext
from repro.core.reputation import Reputation
from repro.core.tables import TrustTable
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.trustfaults.credibility import CredibilityWeights


class TestPurging:
    def test_zero_threshold_never_purges(self):
        w = CredibilityWeights(learning_rate=1.0, purge_threshold=0.0)
        for _ in range(10):
            w.observe_outcome("z", predicted=1.0, actual=0.0)
        assert w.purged == frozenset()
        assert w.factor("z", "y") == pytest.approx(0.0)  # soft weight only

    def test_persistent_deviation_purges(self):
        w = CredibilityWeights(
            learning_rate=0.5, purge_threshold=0.4, min_observations=3
        )
        for _ in range(3):
            w.observe_outcome("z", predicted=1.0, actual=0.0)
        assert w.purged == frozenset({"z"})
        assert w.factor("z", "anyone") == 0.0

    def test_min_observations_protects_early_samples(self):
        w = CredibilityWeights(
            learning_rate=1.0, purge_threshold=0.5, min_observations=3
        )
        w.observe_outcome("z", predicted=1.0, actual=0.0)  # accuracy 0
        assert w.purged == frozenset()  # one unlucky sample is not enough
        assert w.observation_count("z") == 1

    def test_accurate_recommender_never_purged(self):
        w = CredibilityWeights(
            learning_rate=0.5, purge_threshold=0.4, min_observations=1
        )
        for _ in range(20):
            w.observe_outcome("z", predicted=0.9, actual=0.85)
        assert w.purged == frozenset()
        assert w.factor("z", "y") > 0.9

    def test_purge_is_permanent(self):
        w = CredibilityWeights(
            learning_rate=1.0, purge_threshold=0.5, min_observations=1
        )
        w.observe_outcome("z", predicted=1.0, actual=0.0)
        assert "z" in w.purged
        for _ in range(50):
            w.observe_outcome("z", predicted=0.9, actual=0.9)
        assert "z" in w.purged  # no rehabilitation by design

    def test_purges_metered_once(self):
        metrics = MetricsRegistry(enabled=True)
        w = CredibilityWeights(
            learning_rate=1.0,
            purge_threshold=0.5,
            min_observations=1,
            metrics=metrics,
        )
        for _ in range(4):
            w.observe_outcome("z", predicted=1.0, actual=0.0)
        assert (
            metrics.snapshot()["trustq.purged_recommenders"]["value"] == 1
        )

    @pytest.mark.parametrize(
        "kwargs",
        [{"purge_threshold": -0.1}, {"purge_threshold": 1.1},
         {"min_observations": 0}],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CredibilityWeights(**kwargs)


class TestReputationIntegration:
    def test_purged_recommender_leaves_the_average_entirely(self):
        """A purged badmouther must not drag its target down as a zero."""
        context = TrustContext("execute")
        table = TrustTable()
        table.record("honest", "target", context, 0.9, 10.0)
        table.record("liar", "target", context, 0.0, 10.0)
        weights = CredibilityWeights(
            learning_rate=1.0, purge_threshold=0.5, min_observations=1
        )
        rep = Reputation(table=table, weights=weights)
        before = rep.evaluate("target", context, 10.0, asking="asker")
        assert before == pytest.approx((0.9 + 0.0) / 2)
        weights.observe_outcome("liar", predicted=0.0, actual=0.9)
        after = rep.evaluate("target", context, 10.0, asking="asker")
        assert after == pytest.approx(0.9)  # count excludes the purged liar

    def test_all_purged_falls_back_to_prior(self):
        context = TrustContext("execute")
        table = TrustTable()
        table.record("liar", "target", context, 0.0, 0.0)
        weights = CredibilityWeights(
            learning_rate=1.0, purge_threshold=0.5, min_observations=1
        )
        weights.observe_outcome("liar", predicted=0.0, actual=1.0)
        rep = Reputation(table=table, weights=weights, unknown_prior=0.42)
        assert rep.evaluate("target", context, 1.0, asking="asker") == 0.42
