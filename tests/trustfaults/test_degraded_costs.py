"""Tests for graceful cost-provider degradation under trust-plane faults."""

import numpy as np
import pytest

from repro.core.ets import EtsTable
from repro.grid.activities import ActivityCatalog, ActivitySet
from repro.grid.request import Request, Task
from repro.grid.topology import GridBuilder
from repro.obs.metrics import MetricsRegistry
from repro.scheduling.constraints import InfeasiblePolicy, TrustConstraint
from repro.scheduling.costs import CostProvider
from repro.scheduling.policy import TrustPolicy
from repro.trustfaults.model import TrustQueryConfig, TrustSourceFault
from repro.trustfaults.query import ResilientTrustSource


def make_request(grid, index=0, client=0, activities=(0,), arrival=0.0):
    task = Task(
        index=index,
        activities=ActivitySet.of([grid.catalog.by_index(a) for a in activities]),
    )
    return Request(
        index=index, client=grid.clients[client], task=task, arrival_time=arrival
    )


def blackout_source(grid, **config_kwargs):
    return ResilientTrustSource(
        grid,
        fault=TrustSourceFault(blackout=True),
        config=TrustQueryConfig(**config_kwargs),
    )


def f_grid(*, f_forces_max=True, all_f=False):
    """A grid with one machine in a B-required RD and one in an F-required RD."""
    catalog = ActivityCatalog(["execute", "store"])
    builder = GridBuilder(catalog)
    gd = builder.grid_domain("site")
    rd0 = builder.resource_domain(gd, required_level="F" if all_f else "B")
    rd1 = builder.resource_domain(gd, required_level="F")
    builder.machine(rd0)
    builder.machine(rd1)
    cd = builder.client_domain(gd, required_level="C")
    builder.client(cd)
    return builder.build(ets=EtsTable(f_forces_max=f_forces_max))


@pytest.fixture
def eec():
    return np.array([[10.0, 20.0, 30.0], [5.0, 5.0, 5.0]], dtype=np.float64)


class TestHealthySourceIsTransparent:
    def test_rows_bit_identical_with_healthy_source(self, small_grid, eec):
        policy = TrustPolicy.aware()
        bare = CostProvider(grid=small_grid, eec=eec, policy=policy)
        fronted = CostProvider(
            grid=small_grid,
            eec=eec,
            policy=policy,
            trust_source=ResilientTrustSource(small_grid),
        )
        for index in (0, 1):
            req = make_request(small_grid, index=index)
            np.testing.assert_array_equal(
                bare.mapping_ecc_row(req), fronted.mapping_ecc_row(req)
            )
        reqs = [make_request(small_grid, index=i) for i in (0, 1)]
        np.testing.assert_array_equal(
            bare.mapping_ecc_matrix(reqs), fronted.mapping_ecc_matrix(reqs)
        )
        assert fronted.degraded_requests == frozenset()


class TestDegradedPricing:
    def test_blackout_prices_trust_unaware(self, small_grid, eec):
        policy = TrustPolicy.aware()
        provider = CostProvider(
            grid=small_grid,
            eec=eec,
            policy=policy,
            trust_source=blackout_source(small_grid),
        )
        req = make_request(small_grid, index=0)
        row = provider.mapping_ecc_row(req)
        expected = eec[0] + policy.esc_unaware(eec[0])
        np.testing.assert_allclose(row, expected)
        assert provider.degraded_requests == frozenset({0})

    def test_degraded_rows_never_cached(self, small_grid, eec):
        metrics = MetricsRegistry(enabled=True)
        provider = CostProvider(
            grid=small_grid,
            eec=eec,
            policy=TrustPolicy.aware(),
            metrics=metrics,
            trust_source=blackout_source(small_grid),
        )
        req = make_request(small_grid, index=0)
        provider.mapping_ecc_row(req)
        provider.mapping_ecc_row(req)
        # Both accesses re-attempted the plane and re-degraded.
        assert metrics.snapshot()["costs.degraded_rows"]["value"] == 2

    def test_matrix_matches_scalar_rows_under_blackout(self, small_grid, eec):
        policy = TrustPolicy.aware()
        source = blackout_source(small_grid)
        provider = CostProvider(
            grid=small_grid, eec=eec, policy=policy, trust_source=source
        )
        reqs = [
            make_request(small_grid, index=0, client=0),
            make_request(small_grid, index=1, client=1),
        ]
        matrix = provider.mapping_ecc_matrix(reqs)
        for pos, req in enumerate(reqs):
            np.testing.assert_array_equal(
                matrix[pos], provider.mapping_ecc_row(req)
            )
        assert provider.degraded_requests == frozenset({0, 1})

    def test_realized_cost_pays_blanket_security(self, small_grid, eec):
        policy = TrustPolicy.aware()
        provider = CostProvider(
            grid=small_grid,
            eec=eec,
            policy=policy,
            trust_source=blackout_source(small_grid),
        )
        req = make_request(small_grid, index=0)
        provider.mapping_ecc_row(req)  # degrades
        np.testing.assert_allclose(
            provider.realized_ecc_row(req), eec[0] + policy.esc_unaware(eec[0])
        )

    def test_exclusions_still_apply_when_degraded(self, small_grid, eec):
        provider = CostProvider(
            grid=small_grid,
            eec=eec,
            policy=TrustPolicy.aware(),
            trust_source=blackout_source(small_grid),
        )
        provider.exclude(0, 1)
        row = provider.mapping_ecc_row(make_request(small_grid, index=0))
        assert row[1] == np.inf
        assert np.isfinite(row[0]) and np.isfinite(row[2])


class TestRecoveryRepricing:
    def test_rows_reprice_exactly_after_recovery(self, small_grid, eec):
        policy = TrustPolicy.aware()
        source = ResilientTrustSource(
            small_grid,
            fault=TrustSourceFault(outages=((0.0, 100.0),)),
            config=TrustQueryConfig(failure_threshold=3, cooldown=50.0),
        )
        provider = CostProvider(
            grid=small_grid, eec=eec, policy=policy, trust_source=source
        )
        fresh = CostProvider(grid=small_grid, eec=eec, policy=policy)
        req = make_request(small_grid, index=0)
        source.advance(5.0)
        degraded_row = provider.mapping_ecc_row(req)
        assert provider.degraded_requests == frozenset({0})
        source.advance(200.0)  # outage over (and past any cooldown)
        recovered = provider.mapping_ecc_row(req)
        np.testing.assert_array_equal(recovered, fresh.mapping_ecc_row(req))
        assert not np.array_equal(degraded_row, recovered)
        assert provider.degraded_requests == frozenset()

    def test_matrix_repricing_after_recovery(self, small_grid, eec):
        policy = TrustPolicy.aware()
        source = ResilientTrustSource(
            small_grid,
            fault=TrustSourceFault(outages=((0.0, 100.0),)),
            config=TrustQueryConfig(failure_threshold=3),
        )
        provider = CostProvider(
            grid=small_grid, eec=eec, policy=policy, trust_source=source
        )
        fresh = CostProvider(grid=small_grid, eec=eec, policy=policy)
        reqs = [make_request(small_grid, index=i, client=i) for i in (0, 1)]
        source.advance(5.0)
        provider.mapping_ecc_matrix(reqs)
        assert provider.degraded_requests == frozenset({0, 1})
        source.advance(200.0)
        np.testing.assert_array_equal(
            provider.mapping_ecc_matrix(reqs), fresh.mapping_ecc_matrix(reqs)
        )
        assert provider.degraded_requests == frozenset()


class TestForcedConstraintUnderDegradation:
    """Table 1's RTL = F row is derivable without the table, so REJECT
    admission control keeps holding through a trust-plane outage."""

    def test_f_machines_stay_rejected_while_degraded(self):
        grid = f_grid()
        eec = np.array([[10.0, 10.0]], dtype=np.float64)
        policy = TrustPolicy.aware()
        provider = CostProvider(
            grid=grid,
            eec=eec,
            policy=policy,
            constraint=TrustConstraint(
                max_trust_cost=5, infeasible=InfeasiblePolicy.REJECT
            ),
            trust_source=blackout_source(grid),
        )
        req = make_request(grid, index=0)
        row = provider.mapping_ecc_row(req)
        assert np.isfinite(row[0])  # B-required machine: unknown, admitted
        assert row[1] == np.inf  # F-required machine: forced TC_MAX
        assert provider.is_feasible(req)
        matrix = provider.mapping_ecc_matrix([req])
        np.testing.assert_array_equal(matrix[0], row)

    def test_all_f_grid_rejects_under_degradation(self):
        grid = f_grid(all_f=True)
        eec = np.array([[10.0, 10.0]], dtype=np.float64)
        provider = CostProvider(
            grid=grid,
            eec=eec,
            policy=TrustPolicy.aware(),
            constraint=TrustConstraint(
                max_trust_cost=5, infeasible=InfeasiblePolicy.REJECT
            ),
            trust_source=blackout_source(grid),
        )
        req = make_request(grid, index=0)
        assert not provider.is_feasible(req)
        assert np.all(provider.mapping_ecc_row(req) == np.inf)

    def test_variant_without_f_override_admits_everything(self):
        grid = f_grid(f_forces_max=False, all_f=True)
        eec = np.array([[10.0, 10.0]], dtype=np.float64)
        provider = CostProvider(
            grid=grid,
            eec=eec,
            policy=TrustPolicy.aware(),
            constraint=TrustConstraint(
                max_trust_cost=5, infeasible=InfeasiblePolicy.REJECT
            ),
            trust_source=blackout_source(grid),
        )
        req = make_request(grid, index=0)
        # Without the override nothing is derivable locally: unknown
        # pairings are admitted rather than rejected on absent evidence.
        assert provider.is_feasible(req)
        assert np.all(np.isfinite(provider.mapping_ecc_row(req)))
