"""Tests for the trust-plane fault model configuration objects."""

import pytest

from repro.errors import ConfigurationError
from repro.trustfaults.model import (
    AdversarySpec,
    AttackKind,
    IntegrityFaultModel,
    TrustFaultModel,
    TrustQueryConfig,
    TrustSourceFault,
)


class TestTrustSourceFault:
    def test_defaults_are_healthy(self):
        assert not TrustSourceFault().faulty

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"blackout": True},
            {"outages": ((0.0, 10.0),)},
            {"outage_mtbf": 100.0},
            {"latency_mean": 0.1},
            {"refresh_interval": 10.0},
        ],
    )
    def test_any_knob_makes_it_faulty(self, kwargs):
        assert TrustSourceFault(**kwargs).faulty

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"outages": ((10.0, 5.0),)},
            {"outages": ((-1.0, 5.0),)},
            {"outage_mtbf": 0.0},
            {"outage_mttr": 0.0},
            {"latency_mean": -1.0},
            {"refresh_interval": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrustSourceFault(**kwargs)


class TestTrustQueryConfig:
    def test_defaults_valid(self):
        config = TrustQueryConfig()
        assert config.timeout > 0
        assert config.staleness_bound == float("inf")

    @pytest.mark.parametrize(
        "kwargs", [{"timeout": 0.0}, {"staleness_bound": 0.0}]
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrustQueryConfig(**kwargs)


class TestAdversarySpec:
    def test_group_label_defaults_to_kind(self):
        spec = AdversarySpec(kind=AttackKind.BADMOUTH, targets=(0,))
        assert spec.group_label == "badmouth"

    def test_explicit_label_wins(self):
        spec = AdversarySpec(
            kind=AttackKind.BADMOUTH, targets=(0,), label="cartel"
        )
        assert spec.group_label == "cartel"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"targets": ()},
            {"targets": (-1,)},
            {"targets": (0,), "n_recommenders": 0},
            {"targets": (0,), "value_low": -0.1},
            {"targets": (0,), "value_high": 1.1},
            {"targets": (0,), "period": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdversarySpec(kind=AttackKind.BALLOT_STUFF, **kwargs)


class TestTrustFaultModel:
    def test_empty_model_disabled(self):
        assert not TrustFaultModel().enabled

    def test_table_fault_enables(self):
        assert TrustFaultModel(table=TrustSourceFault(blackout=True)).enabled

    def test_recommender_profiles_enable(self):
        model = TrustFaultModel(
            recommenders={"cd:0": TrustSourceFault(blackout=True)}
        )
        assert model.enabled

    def test_integrity_enables(self):
        model = TrustFaultModel(
            integrity=IntegrityFaultModel(
                adversaries=(
                    AdversarySpec(kind=AttackKind.BADMOUTH, targets=(0,)),
                )
            )
        )
        assert model.enabled

    def test_integrity_model_needs_adversaries(self):
        with pytest.raises(ConfigurationError):
            IntegrityFaultModel(adversaries=())
