"""Tests for trust-plane fault wiring in the closed-loop GridSession."""

import pytest

from repro.errors import ConfigurationError
from repro.grid.agents import AgentFleet
from repro.grid.behavior import BehaviorModel, StationaryBehavior
from repro.grid.session import GridSession
from repro.obs.metrics import MetricsRegistry
from repro.scheduling.policy import TrustPolicy
from repro.trustfaults.model import (
    AdversarySpec,
    AttackKind,
    IntegrityFaultModel,
    TrustFaultModel,
    TrustQueryConfig,
    TrustSourceFault,
)
from repro.workloads.scenario import ScenarioSpec, materialize


def make_grid(seed=0):
    return materialize(
        ScenarioSpec(cd_range=(2, 2), rd_range=(3, 3)), seed=seed
    ).grid


def make_session(grid, *, trustfaults=None, fleet=None, metrics=None, seed=0):
    return GridSession(
        grid=grid,
        behavior=BehaviorModel(profiles={}, default=StationaryBehavior(0.9, 0.05)),
        policy=TrustPolicy.aware(),
        seed=seed,
        fleet=fleet,
        metrics=metrics,
        trustfaults=trustfaults,
    )


INTEGRITY = IntegrityFaultModel(
    adversaries=(
        AdversarySpec(kind=AttackKind.BALLOT_STUFF, targets=(0,)),
    )
)


class TestWiring:
    def test_disabled_model_changes_nothing(self):
        grid = make_grid()
        baseline = make_session(make_grid()).run(rounds=2, requests_per_round=8)
        session = make_session(grid, trustfaults=TrustFaultModel())
        result = session.run(rounds=2, requests_per_round=8)
        assert result.total_degraded == 0
        assert all(r.injected_opinions == 0 for r in result.rounds)
        assert [r.schedule.records for r in result.rounds] == [
            r.schedule.records for r in baseline.rounds
        ]

    def test_integrity_requires_gamma_fleet(self):
        with pytest.raises(ConfigurationError, match="Γ-blended"):
            make_session(
                make_grid(),
                trustfaults=TrustFaultModel(integrity=INTEGRITY),
            )

    def test_recommender_faults_require_gamma_fleet(self):
        with pytest.raises(ConfigurationError, match="Γ-blended"):
            make_session(
                make_grid(),
                trustfaults=TrustFaultModel(
                    recommenders={"cd:1": TrustSourceFault(blackout=True)}
                ),
            )

    def test_adversaries_inject_each_round(self):
        grid = make_grid()
        fleet = AgentFleet.for_table(
            grid.trust_table, gamma_weights=(0.5, 0.5)
        )
        session = make_session(
            grid,
            fleet=fleet,
            trustfaults=TrustFaultModel(integrity=INTEGRITY),
        )
        result = session.run(rounds=2, requests_per_round=8)
        assert all(r.injected_opinions > 0 for r in result.rounds)

    def test_table_blackout_degrades_but_completes(self):
        grid = make_grid()
        metrics = MetricsRegistry(enabled=True)
        session = make_session(
            grid,
            metrics=metrics,
            trustfaults=TrustFaultModel(
                table=TrustSourceFault(blackout=True),
                query=TrustQueryConfig(failure_threshold=1),
            ),
        )
        result = session.run(rounds=2, requests_per_round=8)
        assert result.total_degraded > 0
        assert sum(r.schedule.n_completed for r in result.rounds) == 16
        snap = metrics.snapshot()
        assert snap["costs.degraded_rows"]["value"] > 0
        assert "trustq.breaker.table.closed->open" in snap

    def test_healthy_table_source_never_degrades(self):
        grid = make_grid()
        session = make_session(
            grid,
            trustfaults=TrustFaultModel(table=TrustSourceFault()),
        )
        result = session.run(rounds=2, requests_per_round=8)
        assert result.total_degraded == 0
