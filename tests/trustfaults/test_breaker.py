"""Tests for the circuit breaker and retry backoff."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.trustfaults.breaker import BackoffPolicy, BreakerState, CircuitBreaker


class TestBreakerStateMachine:
    def test_starts_closed(self):
        assert CircuitBreaker().state(0.0) is BreakerState.CLOSED

    def test_failures_below_threshold_stay_closed(self):
        b = CircuitBreaker(failure_threshold=3)
        b.record_failure(0.0)
        b.record_failure(1.0)
        assert b.state(1.0) is BreakerState.CLOSED
        assert b.allows(1.0)

    def test_threshold_trips_open(self):
        b = CircuitBreaker(failure_threshold=3)
        for t in (0.0, 1.0, 2.0):
            b.record_failure(t)
        assert b.state(2.0) is BreakerState.OPEN
        assert not b.allows(2.0)

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure(0.0)
        b.record_success(1.0)
        b.record_failure(2.0)
        assert b.state(2.0) is BreakerState.CLOSED

    def test_cooldown_half_opens(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=50.0)
        b.record_failure(0.0)
        assert b.state(49.9) is BreakerState.OPEN
        assert b.state(50.0) is BreakerState.HALF_OPEN
        assert b.allows(50.0)

    def test_probe_success_closes(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=10.0, probe_successes=1)
        b.record_failure(0.0)
        b.record_success(20.0)
        assert b.state(20.0) is BreakerState.CLOSED

    def test_multiple_probe_successes_required(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=10.0, probe_successes=2)
        b.record_failure(0.0)
        b.record_success(20.0)
        assert b.state(20.0) is BreakerState.HALF_OPEN
        b.record_success(21.0)
        assert b.state(21.0) is BreakerState.CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        b = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        b.record_failure(0.0)
        b.record_failure(10.0)  # probe fails
        assert b.state(15.0) is BreakerState.OPEN  # cooldown restarted at 10
        assert b.state(20.0) is BreakerState.HALF_OPEN

    def test_transitions_counted_and_metered(self):
        metrics = MetricsRegistry(enabled=True)
        b = CircuitBreaker(
            name="src", failure_threshold=1, cooldown=10.0, metrics=metrics
        )
        b.record_failure(0.0)
        b.record_success(10.0)  # half-open via lazy cooldown, then closed
        assert b.transition_count == 3
        snap = metrics.snapshot()
        assert snap["trustq.breaker.src.closed->open"]["value"] == 1
        assert snap["trustq.breaker.src.open->half-open"]["value"] == 1
        assert snap["trustq.breaker.src.half-open->closed"]["value"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown": -1.0},
            {"probe_successes": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(**kwargs)


class TestBackoffPolicy:
    def test_exponential_growth_without_jitter(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, max_delay=60.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert [policy.delay(k, rng) for k in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_delay_capped(self):
        policy = BackoffPolicy(base=1.0, factor=10.0, max_delay=5.0, jitter=0.0)
        rng = np.random.default_rng(0)
        assert policy.delay(6, rng) == 5.0

    def test_jitter_bounds(self):
        policy = BackoffPolicy(base=4.0, factor=1.0, max_delay=4.0, jitter=0.5)
        rng = np.random.default_rng(1)
        delays = [policy.delay(0, rng) for _ in range(200)]
        assert all(2.0 <= d <= 6.0 for d in delays)
        assert max(delays) > 4.0 > min(delays)  # jitter actually spreads

    def test_deterministic_under_seed(self):
        policy = BackoffPolicy()
        a = [policy.delay(k, np.random.default_rng(7)) for k in range(3)]
        b = [policy.delay(k, np.random.default_rng(7)) for k in range(3)]
        assert a == b

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy().delay(-1, np.random.default_rng(0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"factor": 0.5},
            {"base": 10.0, "max_delay": 5.0},
            {"jitter": 1.5},
            {"max_retries": -1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(**kwargs)
