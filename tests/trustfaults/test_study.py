"""Acceptance tests for the three-arm trust-plane resilience study."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.trustfaults import (
    ARTIFACT_SCHEMA,
    run_trustfault_study,
    write_study_artifact,
)


@pytest.fixture(scope="module")
def study():
    # Reduced size for test runtime; the acceptance thresholds still hold.
    return run_trustfault_study(seed=0, rounds=6, requests_per_round=20)


class TestAcceptance:
    def test_attack_inflates_reputation_error(self, study):
        assert study.reputation_error(study.honest) == 0.0
        assert study.reputation_error(study.attacked) > 0.05

    def test_purging_recovers_half_the_reputation_error(self, study):
        assert study.error_recovery >= 0.5

    def test_purging_recovers_half_the_makespan_gap(self, study):
        assert study.makespan_gap > 0
        assert study.makespan_recovery >= 0.5

    def test_only_adversaries_are_purged(self, study):
        assert study.honest.purged == ()
        assert study.attacked.purged == ()  # purging disabled in that arm
        assert len(study.defended.purged) == 8
        assert all(p.startswith("adv:") for p in study.defended.purged)

    def test_attack_pressure_is_identical_across_attacked_arms(self, study):
        assert study.honest.injected_opinions == 0
        assert study.attacked.injected_opinions > 0
        assert (
            study.attacked.injected_opinions
            == study.defended.injected_opinions
        )

    def test_gamma_surface_shape_and_bounds(self, study):
        for arm in (study.honest, study.attacked, study.defended):
            assert arm.gamma.shape == (2, 3, arm.gamma.shape[2])
            assert np.all((arm.gamma >= 0.0) & (arm.gamma <= 1.0))


class TestArtifact:
    def test_dict_schema(self, study):
        data = study.to_dict()
        assert data["schema"] == ARTIFACT_SCHEMA == "repro.trustfaults/v1"
        assert set(data["arms"]) == {"honest", "attacked", "defended"}
        for arm in data["arms"].values():
            assert {
                "completed", "failures", "dropped", "degraded",
                "injected_opinions", "purged", "makespan", "goodput",
                "mean_flow_time", "reputation_error",
            } <= set(arm)
        assert {"reputation_error", "makespan", "makespan_gap"} <= set(
            data["recovery"]
        )

    def test_write_artifact_round_trips(self, study, tmp_path):
        path = write_study_artifact(study, tmp_path / "out" / "study.json")
        loaded = json.loads(path.read_text())
        assert loaded == study.to_dict()
        assert loaded["recovery"]["reputation_error"] >= 0.5


class TestValidation:
    def test_rounds_validated(self):
        with pytest.raises(ConfigurationError):
            run_trustfault_study(rounds=0)

    def test_target_rd_validated(self):
        with pytest.raises(ConfigurationError):
            run_trustfault_study(target_rd=7)
