"""Scheduler-level properties of the resilient trust plane.

Three acceptance properties:

1. **Transparency** — with a healthy :class:`ResilientTrustSource`
   installed (all trust-plane faults disabled), every ``ScheduleResult``
   is bit-identical to a run without the source (fuzzed via hypothesis,
   mirroring ``tests/obs/test_invariants.py``).
2. **Graceful fallback** — a 100 % trust-plane outage still completes the
   full Table-6 workload; the degraded aware run prices and pays exactly
   the blanket trust-unaware costs, so its schedule coincides with the
   trust-unaware scheduler's.
3. **Recovery** — rows re-priced after breaker recovery match fresh-trust
   pricing exactly (covered at provider level in test_degraded_costs and
   end-to-end here via a mid-run outage window run completing).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import PAPER_BATCH_INTERVAL, paper_spec
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.registry import is_batch, make_heuristic
from repro.scheduling.scheduler import TRMScheduler
from repro.trustfaults.breaker import BreakerState
from repro.trustfaults.model import TrustQueryConfig, TrustSourceFault
from repro.trustfaults.query import ResilientTrustSource
from repro.workloads import Consistency
from repro.workloads.scenario import ScenarioSpec, materialize

case_params = st.fixed_dictionaries(
    {
        "n_tasks": st.integers(min_value=1, max_value=16),
        "n_machines": st.integers(min_value=2, max_value=5),
        "seed": st.integers(min_value=0, max_value=10_000),
        "heuristic": st.sampled_from(("mct", "olb", "min-min", "sufferage")),
    }
)


def run_case(params, *, trust_source_for=None, fault=None, config=None):
    spec = ScenarioSpec(
        n_tasks=params["n_tasks"],
        n_machines=params["n_machines"],
        target_load=3.0,
    )
    scenario = materialize(spec, seed=params["seed"])
    source = None
    if trust_source_for is not None:
        source = ResilientTrustSource(
            scenario.grid, fault=fault, config=config
        )
    scheduler = TRMScheduler(
        scenario.grid,
        scenario.eec,
        TrustPolicy.aware(),
        make_heuristic(params["heuristic"]),
        batch_interval=300.0 if is_batch(params["heuristic"]) else None,
        trust_source=source,
    )
    return scheduler.run(scenario.requests), source


def result_fingerprint(result):
    """Everything observable about a ScheduleResult, hashable-comparable."""
    return (
        result.heuristic,
        result.records,
        result.rejected,
        tuple(sorted(result.rejection_reasons.items())),
        result.failures,
        result.dropped,
        tuple((s.busy_time, s.available_time) for s in result.machine_states),
    )


class TestTransparency:
    @settings(max_examples=40, deadline=None)
    @given(case_params)
    def test_healthy_source_is_bit_identical(self, params):
        bare, _ = run_case(params)
        fronted, source = run_case(params, trust_source_for="healthy")
        assert result_fingerprint(bare) == result_fingerprint(fronted)
        assert source.state is BreakerState.CLOSED

    @settings(max_examples=20, deadline=None)
    @given(case_params)
    def test_blackout_run_settles_every_request(self, params):
        result, source = run_case(
            params,
            trust_source_for="blackout",
            fault=TrustSourceFault(blackout=True),
            config=TrustQueryConfig(failure_threshold=1),
        )
        settled = (
            [r.request_index for r in result.records]
            + list(result.rejected)
            + list(result.dropped)
        )
        assert sorted(settled) == list(range(params["n_tasks"]))
        # Cost-blind heuristics (olb) may never query the plane at all;
        # whenever at least one query happened the breaker must have
        # tripped, since every query fails under a blackout (it may sit
        # HALF_OPEN when the clock already passed the cooldown).
        if source.breaker.transition_count:
            assert source.state is not BreakerState.CLOSED


class TestTable6Fallback:
    def test_full_outage_completes_table6_workload(self):
        """100 % trust-plane outage: the full Table-6 workload (min-min,
        inconsistent LoLo, 50 tasks) completes via the trust-unaware
        fallback, and the degraded schedule coincides with the genuinely
        trust-unaware one (same blanket prices seen and paid)."""
        spec = paper_spec(50, Consistency.INCONSISTENT)
        scenario = materialize(spec, seed=0)
        source = ResilientTrustSource(
            scenario.grid,
            fault=TrustSourceFault(blackout=True),
            config=TrustQueryConfig(failure_threshold=1),
        )
        degraded = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            make_heuristic("min-min"),
            batch_interval=PAPER_BATCH_INTERVAL,
            trust_source=source,
        ).run(scenario.requests)
        assert degraded.n_completed == 50
        assert source.state is BreakerState.OPEN

        unaware = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.unaware(),
            make_heuristic("min-min"),
            batch_interval=PAPER_BATCH_INTERVAL,
        ).run(scenario.requests)
        assert degraded.records == unaware.records

    def test_mid_run_outage_recovers(self):
        """An outage window covering the first batches degrades early
        mappings only; the run completes and later batches see fresh
        trust again (the breaker closes)."""
        spec = paper_spec(50, Consistency.INCONSISTENT)
        scenario = materialize(spec, seed=1)
        horizon = max(r.arrival_time for r in scenario.requests)
        source = ResilientTrustSource(
            scenario.grid,
            fault=TrustSourceFault(outages=((0.0, horizon * 0.25),)),
            config=TrustQueryConfig(failure_threshold=1, cooldown=1.0),
        )
        result = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            make_heuristic("min-min"),
            batch_interval=PAPER_BATCH_INTERVAL,
            trust_source=source,
        ).run(scenario.requests)
        assert result.n_completed == 50
        assert source.state is BreakerState.CLOSED
