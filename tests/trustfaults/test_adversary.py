"""Tests for adversarial recommendation streams."""

from repro.core.tables import TrustTable
from repro.grid.agents import AgentSide, domain_entity_id
from repro.obs.metrics import MetricsRegistry
from repro.trustfaults.adversary import AdversaryFleet
from repro.trustfaults.model import (
    AdversarySpec,
    AttackKind,
    IntegrityFaultModel,
)


def make_fleet(small_grid, *specs, metrics=None):
    table = TrustTable()
    fleet = AdversaryFleet(
        IntegrityFaultModel(adversaries=tuple(specs)),
        table,
        small_grid.catalog,
        metrics=metrics,
    )
    return fleet, table


def opinions_about(table, rd_index, context):
    trustee = domain_entity_id(AgentSide.RESOURCE_DOMAIN, rd_index)
    return dict(table.recommenders(trustee, context, excluding=object()))


class TestInjection:
    def test_badmouth_reports_low_about_targets(self, small_grid):
        spec = AdversarySpec(
            kind=AttackKind.BADMOUTH, targets=(0, 1), n_recommenders=2
        )
        fleet, table = make_fleet(small_grid, spec)
        written = fleet.inject(10.0, round_index=0)
        n_contexts = len(small_grid.catalog)
        assert written == 2 * 2 * n_contexts
        for rd in (0, 1):
            for context in (a.context for a in small_grid.catalog):
                recs = opinions_about(table, rd, context)
                assert len(recs) == 2
                assert all(
                    rec.value == spec.value_low for rec in recs.values()
                )
                assert all(
                    rec.last_transaction == 10.0 for rec in recs.values()
                )

    def test_ballot_stuff_reports_high(self, small_grid):
        spec = AdversarySpec(kind=AttackKind.BALLOT_STUFF, targets=(1,))
        fleet, table = make_fleet(small_grid, spec)
        fleet.inject(0.0, round_index=0)
        context = small_grid.catalog.by_index(0).context
        recs = opinions_about(table, 1, context)
        assert all(rec.value == spec.value_high for rec in recs.values())

    def test_collusion_also_stuffs_the_clique(self, small_grid):
        spec = AdversarySpec(
            kind=AttackKind.COLLUSION, targets=(0,), n_recommenders=3
        )
        fleet, table = make_fleet(small_grid, spec)
        fleet.inject(0.0, round_index=0)
        members = fleet.members_of(0)
        context = small_grid.catalog.by_index(0).context
        for member in members:
            peers = dict(
                table.recommenders(member, context, excluding=object())
            )
            assert set(peers) == set(members) - {member}
            assert all(rec.value == spec.value_high for rec in peers.values())

    def test_oscillate_alternates_phases(self, small_grid):
        spec = AdversarySpec(
            kind=AttackKind.OSCILLATE, targets=(0,), period=2
        )
        fleet, table = make_fleet(small_grid, spec)
        context = small_grid.catalog.by_index(0).context

        def reported(round_index):
            fleet.inject(float(round_index), round_index)
            recs = opinions_about(table, 0, context)
            (value,) = {rec.value for rec in recs.values()}
            return value

        assert reported(0) == spec.value_low  # truthful-looking phase
        assert reported(1) == spec.value_low
        assert reported(2) == spec.value_high  # lying phase
        assert reported(3) == spec.value_high
        assert reported(4) == spec.value_low

    def test_rerecording_overwrites_not_accumulates(self, small_grid):
        spec = AdversarySpec(kind=AttackKind.BADMOUTH, targets=(0,))
        fleet, table = make_fleet(small_grid, spec)
        fleet.inject(0.0, round_index=0)
        size = len(table)
        fleet.inject(1.0, round_index=1)
        assert len(table) == size  # freshest opinion wins, table bounded

    def test_member_identities_are_stable_and_labelled(self, small_grid):
        spec = AdversarySpec(
            kind=AttackKind.BADMOUTH,
            targets=(0,),
            n_recommenders=2,
            label="cartel",
        )
        fleet, _ = make_fleet(small_grid, spec)
        assert fleet.recommender_ids == ("adv:cartel:0", "adv:cartel:1")

    def test_injected_opinions_metered(self, small_grid):
        metrics = MetricsRegistry(enabled=True)
        spec = AdversarySpec(kind=AttackKind.BADMOUTH, targets=(0,))
        fleet, _ = make_fleet(small_grid, spec, metrics=metrics)
        written = fleet.inject(0.0, round_index=0)
        assert written > 0
        assert (
            metrics.snapshot()["trustq.injected_opinions"]["value"] == written
        )
