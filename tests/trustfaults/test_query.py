"""Tests for the resilient trust-query path (timeout/backoff/breaker)."""

import numpy as np
import pytest

from repro.errors import (
    StaleTrustData,
    TrustQueryTimeout,
    TrustSourceUnavailable,
)
from repro.obs.metrics import MetricsRegistry
from repro.trustfaults.breaker import BreakerState
from repro.trustfaults.model import (
    TrustFaultModel,
    TrustQueryConfig,
    TrustSourceFault,
)
from repro.trustfaults.query import (
    RecommenderAvailability,
    ResilientTrustSource,
    SourcePath,
)


class TestSourcePath:
    def test_blackout_is_always_down(self):
        path = SourcePath(
            TrustSourceFault(blackout=True), np.random.default_rng(0)
        )
        assert path.is_down(0.0) and path.is_down(1e9)

    def test_outage_windows_are_half_open(self):
        path = SourcePath(
            TrustSourceFault(outages=((10.0, 20.0),)), np.random.default_rng(0)
        )
        assert not path.is_down(9.9)
        assert path.is_down(10.0)
        assert path.is_down(19.9)
        assert not path.is_down(20.0)

    def test_random_process_deterministic_in_seed(self):
        fault = TrustSourceFault(outage_mtbf=100.0, outage_mttr=20.0)
        a = SourcePath(fault, np.random.default_rng(3))
        b = SourcePath(fault, np.random.default_rng(3))
        ts = np.linspace(0.0, 2000.0, 400)
        assert [a.is_down(t) for t in ts] == [b.is_down(t) for t in ts]

    def test_age_zero_without_refresh_interval(self):
        path = SourcePath(TrustSourceFault(), np.random.default_rng(0))
        assert path.age(123.0) == 0.0

    def test_age_measures_from_last_refresh(self):
        path = SourcePath(
            TrustSourceFault(refresh_interval=10.0), np.random.default_rng(0)
        )
        assert path.age(7.0) == pytest.approx(7.0)
        assert path.age(13.0) == pytest.approx(3.0)

    def test_outage_skips_refresh_ticks(self):
        # Ticks at 10 and 20 fall in the outage; the last refresh is t=0.
        path = SourcePath(
            TrustSourceFault(refresh_interval=10.0, outages=((5.0, 25.0),)),
            np.random.default_rng(0),
        )
        assert path.age(24.0) == pytest.approx(24.0)
        assert path.age(30.0) == pytest.approx(0.0)


class TestResilientQueryLadder:
    def test_healthy_source_answers(self, small_grid):
        source = ResilientTrustSource(small_grid)
        source.check()  # no exception
        assert source.state is BreakerState.CLOSED
        row = source.trust_cost_per_machine(0, [0])
        np.testing.assert_allclose(
            row, small_grid.trust_cost_per_machine(0, [0])
        )

    def test_down_source_times_out_then_fast_fails(self, small_grid):
        metrics = MetricsRegistry(enabled=True)
        source = ResilientTrustSource(
            small_grid,
            fault=TrustSourceFault(blackout=True),
            config=TrustQueryConfig(failure_threshold=3),
            metrics=metrics,
        )
        for _ in range(3):
            with pytest.raises(TrustQueryTimeout):
                source.check()
        assert source.state is BreakerState.OPEN
        with pytest.raises(TrustSourceUnavailable):
            source.check()
        snap = metrics.snapshot()
        assert snap["trustq.queries"]["value"] == 4
        assert snap["trustq.fast_fails"]["value"] == 1
        # 3 queries x (1 attempt + 2 retries) all timed out.
        assert snap["trustq.timeouts"]["value"] == 9

    def test_fast_fail_consumes_no_rng(self, small_grid):
        rng = np.random.default_rng(5)
        source = ResilientTrustSource(
            small_grid,
            fault=TrustSourceFault(blackout=True, latency_mean=0.1),
            config=TrustQueryConfig(failure_threshold=1),
            rng=rng,
        )
        with pytest.raises(TrustQueryTimeout):
            source.check()
        state_before = rng.bit_generator.state
        with pytest.raises(TrustSourceUnavailable):
            source.check()
        assert rng.bit_generator.state == state_before

    def test_slow_source_times_out(self, small_grid):
        # Mean latency far beyond the per-attempt budget: effectively
        # every attempt is too slow under any draw sequence.
        source = ResilientTrustSource(
            small_grid,
            fault=TrustSourceFault(latency_mean=1e9),
            config=TrustQueryConfig(timeout=1e-6, failure_threshold=100),
            rng=0,
        )
        with pytest.raises(TrustQueryTimeout):
            source.check()

    def test_outage_recovery_closes_breaker(self, small_grid):
        source = ResilientTrustSource(
            small_grid,
            fault=TrustSourceFault(outages=((0.0, 100.0),)),
            config=TrustQueryConfig(failure_threshold=1, cooldown=50.0),
        )
        source.advance(5.0)
        with pytest.raises(TrustQueryTimeout):
            source.check()
        assert source.state is BreakerState.OPEN
        source.advance(200.0)  # past the outage and the cooldown
        assert source.state is BreakerState.HALF_OPEN
        source.check()  # probe succeeds
        assert source.state is BreakerState.CLOSED

    def test_stale_data_raises_but_counts_as_success(self, small_grid):
        metrics = MetricsRegistry(enabled=True)
        source = ResilientTrustSource(
            small_grid,
            fault=TrustSourceFault(
                refresh_interval=10.0, outages=((5.0, 98.0),)
            ),
            config=TrustQueryConfig(staleness_bound=20.0, failure_threshold=1),
            metrics=metrics,
        )
        # Past the outage the source answers again, but its data is stale:
        # every refresh tick since t=0 fell inside the outage.
        source.advance(98.0)
        with pytest.raises(StaleTrustData):
            source.check()
        assert source.state is BreakerState.CLOSED
        assert metrics.snapshot()["trustq.stale"]["value"] == 1

    def test_advance_never_moves_backwards(self, small_grid):
        source = ResilientTrustSource(small_grid)
        source.advance(10.0)
        source.advance(3.0)
        assert source.now == 10.0

    def test_from_model(self, small_grid):
        model = TrustFaultModel(
            table=TrustSourceFault(blackout=True),
            query=TrustQueryConfig(failure_threshold=7),
        )
        source = ResilientTrustSource.from_model(small_grid, model)
        assert source.fault is model.table
        assert source.breaker.failure_threshold == 7

    def test_bind_metrics_reaches_the_breaker(self, small_grid):
        source = ResilientTrustSource(
            small_grid,
            fault=TrustSourceFault(blackout=True),
            config=TrustQueryConfig(failure_threshold=1),
        )
        metrics = MetricsRegistry(enabled=True)
        source.bind_metrics(metrics)
        with pytest.raises(TrustQueryTimeout):
            source.check()
        assert "trustq.breaker.table.closed->open" in metrics.snapshot()


class TestRecommenderAvailability:
    def test_unknown_entities_always_available(self):
        avail = RecommenderAvailability({})
        assert avail.available("anyone", 0.0)

    def test_profiled_entity_follows_its_outages(self):
        avail = RecommenderAvailability(
            {"z": TrustSourceFault(outages=((0.0, 10.0),))}
        )
        assert not avail.available("z", 5.0)
        assert avail.available("z", 15.0)

    def test_skips_are_counted(self):
        metrics = MetricsRegistry(enabled=True)
        avail = RecommenderAvailability(
            {"z": TrustSourceFault(blackout=True)}, metrics=metrics
        )
        avail.available("z", 1.0)
        avail.available("z", 2.0)
        assert (
            metrics.snapshot()["trustq.recommenders_skipped"]["value"] == 2
        )

    def test_as_filter_matches_reputation_signature(self):
        avail = RecommenderAvailability(
            {"z": TrustSourceFault(blackout=True)}
        )
        fn = avail.as_filter()
        assert fn("z", 0.0) is False
        assert fn("w", 0.0) is True
