"""Tests for the batch heuristics: Min-min, Max-min, Sufferage, Duplex."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.activities import ActivitySet
from repro.grid.request import Request, Task
from repro.scheduling.costs import CostProvider
from repro.scheduling.duplex import DuplexHeuristic
from repro.scheduling.maxmin import MaxMinHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.sufferage import SufferageHeuristic

BATCH_HEURISTICS = [MinMinHeuristic, MaxMinHeuristic, SufferageHeuristic, DuplexHeuristic]


def make_costs(grid, eec: np.ndarray) -> CostProvider:
    """Uniform full trust so the EEC matrix alone drives decisions."""
    n_cd, n_rd, n_act = grid.trust_table.shape
    grid.trust_table.fill_from(np.full((n_cd, n_rd, n_act), 5, dtype=np.int64))
    grid.cd_required[:] = 1
    grid.rd_required[:] = 1
    return CostProvider(grid=grid, eec=np.asarray(eec, dtype=float), policy=TrustPolicy.aware())


def make_requests(grid, n: int) -> list[Request]:
    reqs = []
    for i in range(n):
        task = Task(index=i, activities=ActivitySet.of(grid.catalog.by_index(0)))
        reqs.append(Request(index=i, client=grid.clients[0], task=task, arrival_time=0.0))
    return reqs


def plan_makespan(plan, costs, avail):
    alpha = np.array(avail, dtype=float, copy=True)
    for item in plan:
        alpha[item.machine_index] += costs.mapping_ecc_row(item.request)[item.machine_index]
    return alpha.max()


@pytest.mark.parametrize("Heuristic", BATCH_HEURISTICS, ids=lambda h: h.__name__)
class TestPlanContract:
    def test_covers_all_requests_exactly_once(self, small_grid, Heuristic):
        eec = np.random.default_rng(0).uniform(1, 50, size=(8, 3))
        costs = make_costs(small_grid, eec)
        reqs = make_requests(small_grid, 8)
        plan = Heuristic().plan(reqs, costs, np.zeros(3))
        assert sorted(p.request.index for p in plan) == list(range(8))
        assert sorted(p.order for p in plan) == list(range(8))

    def test_empty_batch_gives_empty_plan(self, small_grid, Heuristic):
        costs = make_costs(small_grid, np.ones((1, 3)))
        assert Heuristic().plan([], costs, np.zeros(3)) == []

    def test_machine_indices_valid(self, small_grid, Heuristic):
        eec = np.random.default_rng(1).uniform(1, 50, size=(6, 3))
        costs = make_costs(small_grid, eec)
        plan = Heuristic().plan(make_requests(small_grid, 6), costs, np.zeros(3))
        assert all(0 <= p.machine_index < 3 for p in plan)

    def test_single_request_gets_best_machine(self, small_grid, Heuristic):
        eec = np.array([[9.0, 2.0, 7.0]])
        costs = make_costs(small_grid, eec)
        plan = Heuristic().plan(make_requests(small_grid, 1), costs, np.zeros(3))
        assert plan[0].machine_index == 1


class TestMinMinOrdering:
    def test_cheapest_task_scheduled_first(self, small_grid):
        eec = np.array([[50.0, 60.0, 70.0], [1.0, 2.0, 3.0]])
        costs = make_costs(small_grid, eec)
        plan = MinMinHeuristic().plan(make_requests(small_grid, 2), costs, np.zeros(3))
        assert plan[0].request.index == 1  # the small task goes first

    def test_availability_respected(self, small_grid):
        eec = np.array([[10.0, 10.0, 10.0]])
        costs = make_costs(small_grid, eec)
        avail = np.array([100.0, 0.0, 100.0])
        plan = MinMinHeuristic().plan(make_requests(small_grid, 1), costs, avail)
        assert plan[0].machine_index == 1


class TestMaxMinOrdering:
    def test_longest_task_scheduled_first(self, small_grid):
        eec = np.array([[50.0, 60.0, 70.0], [1.0, 2.0, 3.0]])
        costs = make_costs(small_grid, eec)
        plan = MaxMinHeuristic().plan(make_requests(small_grid, 2), costs, np.zeros(3))
        assert plan[0].request.index == 0


class TestSufferage:
    def test_contended_machine_goes_to_bigger_sufferer(self, small_grid):
        # Both tasks prefer machine 0; task 0 suffers 1, task 1 suffers 50.
        eec = np.array([[10.0, 11.0, 100.0], [10.0, 60.0, 100.0]])
        costs = make_costs(small_grid, eec)
        plan = SufferageHeuristic().plan(make_requests(small_grid, 2), costs, np.zeros(3))
        winner = next(p for p in plan if p.machine_index == 0)
        assert winner.request.index == 1

    def test_loser_assigned_in_later_iteration(self, small_grid):
        eec = np.array([[10.0, 11.0, 100.0], [10.0, 60.0, 100.0]])
        costs = make_costs(small_grid, eec)
        plan = SufferageHeuristic().plan(make_requests(small_grid, 2), costs, np.zeros(3))
        loser = next(p for p in plan if p.request.index == 0)
        # After machine 0 is taken (alpha 10), task 0's best is machine 1 (11).
        assert loser.machine_index == 1

    def test_single_machine_grid_sufferage_zero(self):
        from repro.grid.activities import ActivityCatalog
        from repro.grid.topology import GridBuilder

        builder = GridBuilder(ActivityCatalog.default(1))
        gd = builder.grid_domain("x")
        rd = builder.resource_domain(gd, required_level="A")
        cd = builder.client_domain(gd, required_level="A")
        builder.machine(rd)
        builder.client(cd)
        grid = builder.build()
        costs = make_costs(grid, np.array([[5.0], [7.0]]))
        plan = SufferageHeuristic().plan(make_requests(grid, 2), costs, np.zeros(1))
        assert sorted(p.request.index for p in plan) == [0, 1]
        assert all(p.machine_index == 0 for p in plan)


class TestDuplex:
    def test_never_worse_than_either_parent(self, small_grid):
        rng = np.random.default_rng(7)
        for _ in range(10):
            eec = rng.uniform(1, 100, size=(10, 3))
            costs = make_costs(small_grid, eec)
            reqs = make_requests(small_grid, 10)
            avail = np.zeros(3)
            d = plan_makespan(DuplexHeuristic().plan(reqs, costs, avail), costs, avail)
            mi = plan_makespan(MinMinHeuristic().plan(reqs, costs, avail), costs, avail)
            ma = plan_makespan(MaxMinHeuristic().plan(reqs, costs, avail), costs, avail)
            assert d <= min(mi, ma) + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_all_batch_heuristics_cover_batch(n, seed):
    """Property: every batch heuristic plans every request exactly once."""
    from repro.grid.activities import ActivityCatalog
    from repro.grid.topology import GridBuilder

    builder = GridBuilder(ActivityCatalog.default(2))
    gd = builder.grid_domain("x")
    rd = builder.resource_domain(gd, required_level="A")
    cd = builder.client_domain(gd, required_level="A")
    for _ in range(3):
        builder.machine(rd)
    builder.client(cd)
    grid = builder.build()
    eec = np.random.default_rng(seed).uniform(1, 100, size=(n, 3))
    costs = make_costs(grid, eec)
    reqs = make_requests(grid, n)
    for Heuristic in BATCH_HEURISTICS:
        plan = Heuristic().plan(reqs, costs, np.zeros(3))
        assert sorted(p.request.index for p in plan) == list(range(n))
