"""Tests for the CostProvider."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grid.activities import ActivitySet
from repro.grid.request import Request, Task
from repro.scheduling.costs import CostProvider
from repro.scheduling.policy import TrustPolicy


def make_request(grid, index=0, client=0, activities=(0,), arrival=0.0) -> Request:
    task = Task(
        index=index,
        activities=ActivitySet.of([grid.catalog.by_index(a) for a in activities]),
    )
    return Request(index=index, client=grid.clients[client], task=task, arrival_time=arrival)


@pytest.fixture
def provider(small_grid):
    eec = np.array(
        [[10.0, 20.0, 30.0], [5.0, 5.0, 5.0]], dtype=np.float64
    )
    return CostProvider(grid=small_grid, eec=eec, policy=TrustPolicy.aware())


class TestValidation:
    def test_column_count_must_match_machines(self, small_grid):
        with pytest.raises(ConfigurationError, match="machines"):
            CostProvider(small_grid, np.ones((2, 2)), TrustPolicy.aware())

    def test_eec_must_be_positive(self, small_grid):
        with pytest.raises(ConfigurationError):
            CostProvider(small_grid, np.zeros((2, 3)), TrustPolicy.aware())

    def test_eec_must_be_2d(self, small_grid):
        with pytest.raises(ConfigurationError):
            CostProvider(small_grid, np.ones(3), TrustPolicy.aware())

    def test_task_index_out_of_matrix(self, small_grid, provider):
        req = make_request(small_grid, index=9)
        with pytest.raises(ConfigurationError):
            provider.eec_row(req)


class TestRows:
    def test_eec_row(self, small_grid, provider):
        req = make_request(small_grid, index=1)
        np.testing.assert_allclose(provider.eec_row(req), [5.0, 5.0, 5.0])

    def test_trust_cost_row_matches_grid(self, small_grid, provider):
        # Trust table is uniform A; cd0 RTL=C(3); RD RTLs are B(2), D(4).
        # Effective RTL per RD: [3, 4]; OTL=1 -> TC per RD [2, 3].
        # Machines [rd0, rd0, rd1] -> [2, 2, 3].
        req = make_request(small_grid, index=0, client=0)
        np.testing.assert_allclose(provider.trust_cost_row(req), [2.0, 2.0, 3.0])

    def test_trust_cost_row_cached(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        a = provider.trust_cost_row(req)
        b = provider.trust_cost_row(req)
        assert a is b
        with pytest.raises(ValueError):
            a[0] = 99  # cached row is frozen

    def test_mapping_row_aware(self, small_grid, provider):
        req = make_request(small_grid, index=0, client=0)
        # ECC = EEC * (1 + 0.15*TC) with TC [2, 2, 3].
        expected = np.array([10.0, 20.0, 30.0]) * np.array([1.3, 1.3, 1.45])
        np.testing.assert_allclose(provider.mapping_ecc_row(req), expected)

    def test_with_policy_switches_formula(self, small_grid, provider):
        unaware = provider.with_policy(TrustPolicy.unaware())
        req = make_request(small_grid, index=0)
        np.testing.assert_allclose(
            unaware.mapping_ecc_row(req), np.array([10.0, 20.0, 30.0]) * 1.5
        )
        # Trust costs are policy independent.
        np.testing.assert_allclose(
            unaware.trust_cost_row(req), provider.trust_cost_row(req)
        )

    def test_composed_activities_lower_otl(self, small_grid, provider):
        # Raise activity 0's level for cd0/rd0 to E; activity 1 stays A.
        small_grid.trust_table.set(0, 0, 0, "E")
        provider2 = CostProvider(
            grid=small_grid, eec=provider.eec, policy=TrustPolicy.aware()
        )
        atomic = make_request(small_grid, index=0, activities=(0,))
        composed = make_request(small_grid, index=1, activities=(0, 1))
        # Atomic on rd0: OTL=E(5) >= RTL C(3)/B(2) -> TC 0 on machines 0,1.
        np.testing.assert_allclose(provider2.trust_cost_row(atomic)[:2], [0.0, 0.0])
        # Composed drags OTL back to A -> TC 2.
        np.testing.assert_allclose(provider2.trust_cost_row(composed)[:2], [2.0, 2.0])
