"""Tests for the CostProvider."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grid.activities import ActivitySet
from repro.grid.request import Request, Task
from repro.obs.metrics import MetricsRegistry
from repro.scheduling.constraints import InfeasiblePolicy, TrustConstraint
from repro.scheduling.costs import CostProvider
from repro.scheduling.policy import TrustPolicy


def make_request(grid, index=0, client=0, activities=(0,), arrival=0.0) -> Request:
    task = Task(
        index=index,
        activities=ActivitySet.of([grid.catalog.by_index(a) for a in activities]),
    )
    return Request(index=index, client=grid.clients[client], task=task, arrival_time=arrival)


@pytest.fixture
def provider(small_grid):
    eec = np.array(
        [[10.0, 20.0, 30.0], [5.0, 5.0, 5.0]], dtype=np.float64
    )
    return CostProvider(grid=small_grid, eec=eec, policy=TrustPolicy.aware())


class TestValidation:
    def test_column_count_must_match_machines(self, small_grid):
        with pytest.raises(ConfigurationError, match="machines"):
            CostProvider(small_grid, np.ones((2, 2)), TrustPolicy.aware())

    def test_eec_must_be_positive(self, small_grid):
        with pytest.raises(ConfigurationError):
            CostProvider(small_grid, np.zeros((2, 3)), TrustPolicy.aware())

    def test_eec_must_be_2d(self, small_grid):
        with pytest.raises(ConfigurationError):
            CostProvider(small_grid, np.ones(3), TrustPolicy.aware())

    def test_task_index_out_of_matrix(self, small_grid, provider):
        req = make_request(small_grid, index=9)
        with pytest.raises(ConfigurationError):
            provider.eec_row(req)


class TestRows:
    def test_eec_row(self, small_grid, provider):
        req = make_request(small_grid, index=1)
        np.testing.assert_allclose(provider.eec_row(req), [5.0, 5.0, 5.0])

    def test_trust_cost_row_matches_grid(self, small_grid, provider):
        # Trust table is uniform A; cd0 RTL=C(3); RD RTLs are B(2), D(4).
        # Effective RTL per RD: [3, 4]; OTL=1 -> TC per RD [2, 3].
        # Machines [rd0, rd0, rd1] -> [2, 2, 3].
        req = make_request(small_grid, index=0, client=0)
        np.testing.assert_allclose(provider.trust_cost_row(req), [2.0, 2.0, 3.0])

    def test_trust_cost_row_cached(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        a = provider.trust_cost_row(req)
        b = provider.trust_cost_row(req)
        assert a is b
        with pytest.raises(ValueError):
            a[0] = 99  # cached row is frozen

    def test_mapping_row_aware(self, small_grid, provider):
        req = make_request(small_grid, index=0, client=0)
        # ECC = EEC * (1 + 0.15*TC) with TC [2, 2, 3].
        expected = np.array([10.0, 20.0, 30.0]) * np.array([1.3, 1.3, 1.45])
        np.testing.assert_allclose(provider.mapping_ecc_row(req), expected)

    def test_with_policy_switches_formula(self, small_grid, provider):
        unaware = provider.with_policy(TrustPolicy.unaware())
        req = make_request(small_grid, index=0)
        np.testing.assert_allclose(
            unaware.mapping_ecc_row(req), np.array([10.0, 20.0, 30.0]) * 1.5
        )
        # Trust costs are policy independent.
        np.testing.assert_allclose(
            unaware.trust_cost_row(req), provider.trust_cost_row(req)
        )

    def test_composed_activities_lower_otl(self, small_grid, provider):
        # Raise activity 0's level for cd0/rd0 to E; activity 1 stays A.
        small_grid.trust_table.set(0, 0, 0, "E")
        provider2 = CostProvider(
            grid=small_grid, eec=provider.eec, policy=TrustPolicy.aware()
        )
        atomic = make_request(small_grid, index=0, activities=(0,))
        composed = make_request(small_grid, index=1, activities=(0, 1))
        # Atomic on rd0: OTL=E(5) >= RTL C(3)/B(2) -> TC 0 on machines 0,1.
        np.testing.assert_allclose(provider2.trust_cost_row(atomic)[:2], [0.0, 0.0])
        # Composed drags OTL back to A -> TC 2.
        np.testing.assert_allclose(provider2.trust_cost_row(composed)[:2], [2.0, 2.0])


class TestWithPolicyCarriesState:
    """Regression: ``with_policy`` used to drop the installed constraint,
    so paired aware/unaware comparisons under a TrustConstraint silently
    priced feasibility differently per policy."""

    def test_constraint_carries_over(self, small_grid, provider):
        # TC row is [2, 2, 3]; cap at 2 -> machine 2 must price at +inf
        # under BOTH policies of a paired comparison.
        constrained = CostProvider(
            grid=small_grid,
            eec=provider.eec,
            policy=TrustPolicy.aware(),
            constraint=TrustConstraint(max_trust_cost=2),
        )
        unaware = constrained.with_policy(TrustPolicy.unaware())
        assert unaware.constraint is constrained.constraint
        req = make_request(small_grid, index=0)
        assert np.isinf(constrained.mapping_ecc_row(req)[2])
        assert np.isinf(unaware.mapping_ecc_row(req)[2])
        np.testing.assert_array_equal(
            np.isinf(constrained.mapping_ecc_row(req)),
            np.isinf(unaware.mapping_ecc_row(req)),
        )

    def test_feasibility_agrees_across_policies(self, small_grid, provider):
        # Cap below every machine's TC: both providers must reject.
        constrained = CostProvider(
            grid=small_grid,
            eec=provider.eec,
            policy=TrustPolicy.aware(),
            constraint=TrustConstraint(
                max_trust_cost=1, infeasible=InfeasiblePolicy.REJECT
            ),
        )
        unaware = constrained.with_policy(TrustPolicy.unaware())
        req = make_request(small_grid, index=0)
        assert not constrained.is_feasible(req)
        assert not unaware.is_feasible(req)

    def test_metrics_registry_carries_over(self, small_grid, provider):
        metrics = MetricsRegistry(enabled=True)
        instrumented = CostProvider(
            grid=small_grid,
            eec=provider.eec,
            policy=TrustPolicy.aware(),
            metrics=metrics,
        )
        other = instrumented.with_policy(TrustPolicy.unaware())
        assert other.metrics is metrics


class TestRetryPricing:
    """The retry path's cache/exclusion interplay: exclusions must survive
    a trust-cache invalidation, and the relaxation fallback must restore
    the full row."""

    def test_exclusion_prices_machine_infinite(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        provider.exclude(req.index, 1)
        row = provider.mapping_ecc_row(req)
        assert np.isinf(row[1])
        assert np.isfinite(row[[0, 2]]).all()
        assert provider.exclusions(req.index) == frozenset({1})

    def test_exclusion_survives_tc_cache_invalidation(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        provider.exclude(req.index, 0)
        # Re-pricing a retry invalidates the TC cache; the exclusions are
        # independent state and must keep the failed machine at +inf.
        provider.invalidate_trust_cache(req.index)
        row = provider.mapping_ecc_row(req)
        assert np.isinf(row[0])
        assert np.isfinite(row[1:]).all()

    def test_clear_exclusions_restores_full_row(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        baseline = provider.mapping_ecc_row(req).copy()
        for machine in range(3):
            provider.exclude(req.index, machine)
        assert not np.isfinite(provider.mapping_ecc_row(req)).any()
        # Relaxation fallback: drop all exclusions, full row comes back.
        provider.clear_exclusions(req.index)
        np.testing.assert_allclose(provider.mapping_ecc_row(req), baseline)

    def test_invalidation_sees_evolved_trust(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        before = provider.trust_cost_row(req).copy()
        # Trust evolves between attempts: rd0's level for activity 0 rises.
        small_grid.trust_table.set(0, 0, 0, "E")
        # Cached row is stale until the retry invalidates it.
        np.testing.assert_allclose(provider.trust_cost_row(req), before)
        provider.invalidate_trust_cache(req.index)
        after = provider.trust_cost_row(req)
        assert after[0] < before[0]

    def test_exclusions_are_per_request(self, small_grid, provider):
        first = make_request(small_grid, index=0)
        second = make_request(small_grid, index=1)
        provider.exclude(first.index, 2)
        assert np.isinf(provider.mapping_ecc_row(first)[2])
        assert np.isfinite(provider.mapping_ecc_row(second)).all()

    def test_exclude_validates_machine_index(self, small_grid, provider):
        with pytest.raises(ConfigurationError):
            provider.exclude(0, 99)


class TestSharedTrustCostCache:
    """Regression: the TC cache used to be keyed by ``request.index``, so
    duplicate requests (same client domain, same ToA set) each recomputed
    an identical row.  It is now keyed by the pricing key and shared."""

    def make_provider(self, small_grid):
        metrics = MetricsRegistry(enabled=True)
        eec = np.array([[10.0, 20.0, 30.0], [5.0, 5.0, 5.0]])
        provider = CostProvider(
            grid=small_grid, eec=eec, policy=TrustPolicy.aware(), metrics=metrics
        )
        return provider, metrics

    def test_duplicate_requests_share_one_row(self, small_grid):
        provider, metrics = self.make_provider(small_grid)
        first = make_request(small_grid, index=0, client=0, activities=(0,))
        twin = make_request(small_grid, index=1, client=0, activities=(0,))
        row = provider.trust_cost_row(first)
        assert metrics.counter("costs.tc_rows").value == 1
        assert provider.trust_cost_row(twin) is row
        assert metrics.counter("costs.tc_rows").value == 1  # no recompute

    def test_key_normalises_activity_order(self, small_grid):
        provider, metrics = self.make_provider(small_grid)
        a = make_request(small_grid, index=0, activities=(0, 1))
        b = make_request(small_grid, index=1, activities=(1, 0))
        assert provider.trust_cost_row(a) is provider.trust_cost_row(b)
        assert metrics.counter("costs.tc_rows").value == 1

    def test_distinct_keys_do_not_collide(self, small_grid):
        provider, _ = self.make_provider(small_grid)
        by_client = provider.trust_cost_row(
            make_request(small_grid, index=0, client=0)
        )
        other_client = provider.trust_cost_row(
            make_request(small_grid, index=1, client=1)
        )
        assert by_client is not other_client

    def test_retried_request_reprices_sibling_does_not(self, small_grid):
        provider, metrics = self.make_provider(small_grid)
        retried = make_request(small_grid, index=0, client=0, activities=(0,))
        sibling = make_request(small_grid, index=1, client=0, activities=(0,))
        before = provider.trust_cost_row(retried)
        assert provider.trust_cost_row(sibling) is before
        # Trust evolves between attempts; only the retried request re-prices.
        small_grid.trust_table.set(0, 0, 0, "E")
        provider.invalidate_trust_cache(retried.index)
        after = provider.trust_cost_row(retried)
        assert after[0] < before[0]
        assert metrics.counter("costs.tc_rows").value == 2
        # The identical sibling keeps the shared row, with no recompute.
        assert provider.trust_cost_row(sibling) is before
        assert metrics.counter("costs.tc_rows").value == 2
        # The override is sticky for the retried request.
        assert provider.trust_cost_row(retried) is after


class TestMappingRowCache:
    """Regression: ``mapping_ecc_row`` used to rebuild (and copy) the row on
    every call for requests carrying exclusions; the finished row is now
    cached and invalidated exactly at the exclusion/invalidation points."""

    def test_repeated_calls_return_cached_object(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        row = provider.mapping_ecc_row(req)
        assert provider.mapping_ecc_row(req) is row
        with pytest.raises(ValueError):
            row[0] = 0.0  # cached row is frozen

    def test_excluded_request_row_is_cached_too(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        provider.exclude(req.index, 1)
        row = provider.mapping_ecc_row(req)
        assert np.isinf(row[1])
        assert provider.mapping_ecc_row(req) is row  # no per-call copy

    def test_exclude_invalidates_cached_row(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        before = provider.mapping_ecc_row(req)
        provider.exclude(req.index, 2)
        after = provider.mapping_ecc_row(req)
        assert after is not before
        assert np.isinf(after[2]) and np.isfinite(before[2])

    def test_clear_exclusions_invalidates_cached_row(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        baseline = provider.mapping_ecc_row(req).copy()
        provider.exclude(req.index, 0)
        provider.clear_exclusions(req.index)
        np.testing.assert_array_equal(provider.mapping_ecc_row(req), baseline)

    def test_trust_invalidation_refreshes_mapping_row(self, small_grid, provider):
        req = make_request(small_grid, index=0)
        before = provider.mapping_ecc_row(req)
        small_grid.trust_table.set(0, 0, 0, "E")
        assert provider.mapping_ecc_row(req) is before  # stale until retry
        provider.invalidate_trust_cache(req.index)
        after = provider.mapping_ecc_row(req)
        assert after[0] < before[0]


class TestMatrixAssembly:
    """The batched ``mapping_ecc_matrix`` must be bit-identical to stacking
    ``mapping_ecc_row`` calls, across constraints and retry exclusions."""

    def requests(self, small_grid):
        return [
            make_request(small_grid, index=0, client=0, activities=(0,)),
            make_request(small_grid, index=1, client=1, activities=(0, 1)),
        ]

    def stack(self, provider, requests):
        return np.stack([provider.mapping_ecc_row(r) for r in requests])

    def test_matches_rows_bitwise(self, small_grid, provider):
        requests = self.requests(small_grid)
        np.testing.assert_array_equal(
            provider.mapping_ecc_matrix(requests), self.stack(provider, requests)
        )

    def test_empty_batch(self, small_grid, provider):
        assert provider.mapping_ecc_matrix([]).shape == (0, 3)

    def test_task_index_validated(self, small_grid, provider):
        with pytest.raises(ConfigurationError):
            provider.mapping_ecc_matrix([make_request(small_grid, index=9)])

    @pytest.mark.parametrize("infeasible", list(InfeasiblePolicy))
    def test_matches_rows_under_constraint(self, small_grid, infeasible):
        # Cap at 1: client 0 has no feasible machine (TC row [2, 2, 3]) so
        # the infeasible policy kicks in; client 1 (TC row [1, 1, 3]) keeps
        # a partially-masked row.
        provider = CostProvider(
            grid=small_grid,
            eec=np.array([[10.0, 20.0, 30.0], [5.0, 5.0, 5.0]]),
            policy=TrustPolicy.aware(),
            constraint=TrustConstraint(max_trust_cost=1, infeasible=infeasible),
        )
        requests = self.requests(small_grid)
        matrix = provider.mapping_ecc_matrix(requests)
        np.testing.assert_array_equal(matrix, self.stack(provider, requests))
        if infeasible is InfeasiblePolicy.REJECT:
            assert not np.isfinite(matrix[0]).any()
        else:
            assert np.isfinite(matrix[0]).all()

    def test_matches_rows_with_exclusions_and_override(self, small_grid, provider):
        requests = self.requests(small_grid)
        provider.exclude(0, 1)
        small_grid.trust_table.set(0, 0, 0, "E")
        provider.invalidate_trust_cache(0)
        matrix = provider.mapping_ecc_matrix(requests)
        np.testing.assert_array_equal(matrix, self.stack(provider, requests))
        assert np.isinf(matrix[0, 1])

    def test_matrix_is_writable_and_detached(self, small_grid, provider):
        requests = self.requests(small_grid)
        matrix = provider.mapping_ecc_matrix(requests)
        matrix[:] = -1.0  # callers may scribble on their copy
        np.testing.assert_array_equal(
            provider.mapping_ecc_matrix(requests), self.stack(provider, requests)
        )

    def test_counts_rows_served_and_tc_computed(self, small_grid):
        metrics = MetricsRegistry(enabled=True)
        provider = CostProvider(
            grid=small_grid,
            eec=np.array([[10.0, 20.0, 30.0], [5.0, 5.0, 5.0]]),
            policy=TrustPolicy.aware(),
            metrics=metrics,
        )
        # Two requests sharing one pricing key: 2 rows served, 1 TC row.
        requests = [
            make_request(small_grid, index=0, client=0, activities=(0,)),
            make_request(small_grid, index=1, client=0, activities=(0,)),
        ]
        provider.mapping_ecc_matrix(requests)
        assert metrics.counter("costs.ecc_rows").value == 2
        assert metrics.counter("costs.tc_rows").value == 1
        provider.mapping_ecc_matrix(requests)
        assert metrics.counter("costs.ecc_rows").value == 4
        assert metrics.counter("costs.tc_rows").value == 1  # cache hit
