"""Tests for the trust policy cost formulas (paper Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.scheduling.policy import (
    TRUST_WEIGHT,
    UNAWARE_FRACTION,
    SecurityAccounting,
    TrustPolicy,
)

eec_arrays = st.lists(
    st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=8
).map(lambda xs: np.array(xs))
tc_arrays = st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=8).map(
    lambda xs: np.array(xs, dtype=float)
)


class TestPaperConstants:
    def test_paper_values(self):
        assert TRUST_WEIGHT == 15.0
        assert UNAWARE_FRACTION == 0.5


class TestEscFormulas:
    def test_aware_esc_matches_paper_formula(self):
        policy = TrustPolicy.aware()
        eec = np.array([100.0, 200.0])
        tc = np.array([3.0, 0.0])
        np.testing.assert_allclose(policy.esc_aware(eec, tc), [45.0, 0.0])

    def test_unaware_esc_is_half_eec(self):
        policy = TrustPolicy.unaware()
        np.testing.assert_allclose(policy.esc_unaware(np.array([100.0])), [50.0])

    def test_average_tc_gives_45_percent(self):
        """The paper: with average TC = 3, aware ESC averages 45% of EEC."""
        policy = TrustPolicy.aware()
        esc = policy.esc_aware(np.array([1.0]), np.array([3.0]))
        assert esc[0] == pytest.approx(0.45)

    def test_max_tc_gives_90_percent(self):
        policy = TrustPolicy.aware()
        esc = policy.esc_aware(np.array([1.0]), np.array([6.0]))
        assert esc[0] == pytest.approx(0.90)


class TestMappingVsRealized:
    def test_aware_mapping_equals_realized(self):
        policy = TrustPolicy.aware()
        eec = np.array([10.0, 20.0])
        tc = np.array([2.0, 4.0])
        np.testing.assert_allclose(
            policy.mapping_ecc(eec, tc), policy.realized_ecc(eec, tc)
        )

    def test_unaware_flat_accounting(self):
        policy = TrustPolicy.unaware(accounting=SecurityAccounting.CONSERVATIVE_FLAT)
        eec = np.array([10.0])
        tc = np.array([6.0])
        np.testing.assert_allclose(policy.mapping_ecc(eec, tc), [15.0])
        np.testing.assert_allclose(policy.realized_ecc(eec, tc), [15.0])

    def test_unaware_pair_realized_accounting(self):
        policy = TrustPolicy.unaware(accounting=SecurityAccounting.PAIR_REALIZED)
        eec = np.array([10.0])
        tc = np.array([6.0])
        # Believes flat 1.5x, pays the pair-specific 1.9x.
        np.testing.assert_allclose(policy.mapping_ecc(eec, tc), [15.0])
        np.testing.assert_allclose(policy.realized_ecc(eec, tc), [19.0])

    def test_labels(self):
        assert TrustPolicy.aware().label == "trust-aware"
        assert TrustPolicy.unaware().label == "trust-unaware"

    @given(eec_arrays, tc_arrays)
    def test_ecc_at_least_eec(self, eec, tc):
        tc = tc[: len(eec)] if len(tc) >= len(eec) else np.resize(tc, len(eec))
        for policy in (TrustPolicy.aware(), TrustPolicy.unaware()):
            assert np.all(policy.mapping_ecc(eec, tc) >= eec - 1e-12)
            assert np.all(policy.realized_ecc(eec, tc) >= eec - 1e-12)

    @given(eec_arrays, tc_arrays)
    def test_zero_tc_means_no_aware_overhead(self, eec, tc):
        policy = TrustPolicy.aware()
        zero_tc = np.zeros(len(eec))
        np.testing.assert_allclose(policy.realized_ecc(eec, zero_tc), eec)


class TestValidation:
    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            TrustPolicy(True, tc_weight=-1.0)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            TrustPolicy(False, unaware_fraction=-0.5)

    def test_custom_weight_flows_through(self):
        policy = TrustPolicy.aware(tc_weight=10.0)
        esc = policy.esc_aware(np.array([100.0]), np.array([2.0]))
        assert esc[0] == pytest.approx(20.0)
