"""Golden tie-break tests: the heuristics' deterministic tie resolution.

The vectorised kernels in :mod:`repro.scheduling.fast` are proven
bit-identical to the reference loops, which makes the reference tie-breaks
load-bearing API: if they drift, every equivalence proof and every frozen
table drifts with them.  These tests pin the documented contracts on
hand-built, tie-rich cost matrices with *literal* expected plans (derived
by hand from the contracts — see the inline walk-throughs):

* a row's best machine is the **lowest-index** argmin;
* among requests tied on the decisive value, the **lowest original
  position** wins (Min-min/Max-min selection, Sufferage claims — where a
  claim is only replaced by a *strictly* larger sufferage);
* Sufferage commits surviving claims in **ascending machine order**;
* KPB admits boundary-tied machines **lowest-index first** (stable
  selection) and breaks completion ties by candidate order.

Both the reference and the fast implementation are held to the same
literals.
"""

import hashlib

import numpy as np
import pytest

from repro.grid.activities import ActivitySet
from repro.grid.request import Request, Task
from repro.scheduling.costs import CostProvider
from repro.scheduling.fast import (
    FastKpbHeuristic,
    FastMaxMinHeuristic,
    FastMinMinHeuristic,
    FastSufferageHeuristic,
)
from repro.scheduling.kpb import KpbHeuristic, kpb_subset_size
from repro.scheduling.maxmin import MaxMinHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.scale import (
    HeapMaxMinHeuristic,
    HeapMinMinHeuristic,
    HeapSufferageHeuristic,
)
from repro.scheduling.sufferage import SufferageHeuristic
from repro.workloads.scenario import ScenarioSpec, materialize

# With the trust-unaware policy the mapping cost is EEC * 1.5 everywhere,
# so the tie structure below is exactly the tie structure the heuristics
# see (ECC rows: t0 [3,3,6], t1 [3,6,3], t2 [6,3,3], t3 [3,3,3],
# t4 [12,12,12]).
EEC = np.array(
    [
        [2.0, 2.0, 4.0],
        [2.0, 4.0, 2.0],
        [4.0, 2.0, 2.0],
        [2.0, 2.0, 2.0],
        [8.0, 8.0, 8.0],
    ]
)


@pytest.fixture
def tie_case(small_grid):
    requests = [
        Request(
            index=i,
            client=small_grid.clients[0],
            task=Task(
                index=i,
                activities=ActivitySet.of([small_grid.catalog.by_index(0)]),
            ),
            arrival_time=0.0,
        )
        for i in range(EEC.shape[0])
    ]
    costs = CostProvider(grid=small_grid, eec=EEC, policy=TrustPolicy.unaware())
    return requests, costs


def as_tuples(plan):
    return [(p.request.index, p.machine_index, p.order) for p in plan]


@pytest.mark.parametrize("Heuristic", [MinMinHeuristic, FastMinMinHeuristic])
def test_min_min_tie_breaks(tie_case, Heuristic):
    # Round 1: t0..t3 all have best completion 3 -> lowest position t0,
    # whose lowest-index argmin is m0.  Round 2: t1/t2/t3 tie at 3 -> t1
    # on m2 (m0 now loaded).  Round 3: t2/t3 tie at 3 -> t2 on m1.
    # Round 4: t3's row is all-6 -> lowest-index m0.  t4 last.
    requests, costs = tie_case
    plan = Heuristic().plan(requests, costs, np.zeros(3))
    assert as_tuples(plan) == [
        (0, 0, 0),
        (1, 2, 1),
        (2, 1, 2),
        (3, 0, 3),
        (4, 1, 4),
    ]


@pytest.mark.parametrize("Heuristic", [MaxMinHeuristic, FastMaxMinHeuristic])
def test_max_min_tie_breaks(tie_case, Heuristic):
    # Round 1: t4's best (12) dominates -> m0.  Rounds 2-3: the rest all
    # tie on best 3 -> lowest position wins each round (t0 on m1, t1 on
    # m2).  Round 4: t2/t3 tie at 6 -> t2 on m1.  Round 5: t3 on m2.
    requests, costs = tie_case
    plan = Heuristic().plan(requests, costs, np.zeros(3))
    assert as_tuples(plan) == [
        (4, 0, 0),
        (0, 1, 1),
        (1, 2, 2),
        (2, 1, 3),
        (3, 2, 4),
    ]


@pytest.mark.parametrize("Heuristic", [SufferageHeuristic, FastSufferageHeuristic])
def test_sufferage_tie_breaks(tie_case, Heuristic):
    # Iteration 1: every sufferage is 0; t0 claims m0 and keeps it against
    # t1/t3/t4 (ties never steal a claim), t2 claims m1; commits ascend by
    # machine (m0 then m1).  Iteration 2: t1/t3/t4 all suffer 3 for m2 ->
    # earliest claimant t1 keeps it.  Iteration 3: t3 beats t4 on m0's
    # claim (0 > 0 is false, t3 claims first).  Iteration 4: t4 on m1.
    requests, costs = tie_case
    plan = Heuristic().plan(requests, costs, np.zeros(3))
    assert as_tuples(plan) == [
        (0, 0, 0),
        (2, 1, 1),
        (1, 2, 2),
        (3, 0, 3),
        (4, 1, 4),
    ]


@pytest.mark.parametrize("Heuristic", [KpbHeuristic, FastKpbHeuristic])
def test_kpb_tie_breaks(tie_case, Heuristic):
    # k=40% of 3 machines -> subset of 2, admitted in (cost, index) order.
    requests, costs = tie_case
    heuristic = Heuristic(40.0)
    avail = np.array([5.0, 0.0, 0.0])
    # t3 (all costs equal): candidates are the lowest-index pair [m0, m1];
    # completions [8, 3] -> m1.
    assert heuristic.choose(requests[3], costs, avail) == 1
    # t1 (costs [3, 6, 3]): boundary tie between m0 and m2 admits the
    # lowest index first -> candidates [m0, m2]; completions [8, 3] -> m2.
    assert heuristic.choose(requests[1], costs, avail) == 2
    # t0 on idle machines: candidates [m0, m1] tie at 3 -> first wins.
    assert heuristic.choose(requests[0], costs, np.zeros(3)) == 0


def test_kpb_subset_size_pinned():
    assert kpb_subset_size(3, 40.0) == 2
    assert kpb_subset_size(3, 100.0) == 3
    assert kpb_subset_size(16, 25.0) == 4
    assert kpb_subset_size(1, 10.0) == 1  # never empty


# -- large-scale hash goldens (n = 10⁴) ---------------------------------------
#
# At 10⁴ tasks the reference oracles are too slow to serve as in-test
# oracles, so the full assignment sequence is pinned as a sha256 over
# "request:machine" pairs instead: the fast kernels (proven bit-identical
# to the references at small n) and the heap scale kernels must both hit
# the same literal digest.  Any tie-break or float-path drift at scale —
# where value collisions are plentiful — changes the digest.

GOLDEN_SCALE_SPEC = dict(n_tasks=10_000, n_machines=16, seed=7)

GOLDEN_SCALE_HASHES = {
    "min-min": "cc5e08ec37bed4e8d130261818fa9ba63c9597748fcedddef602f876871523f1",
    "max-min": "03907d74e63654698f324c8ee6f6307fa8010440269cebc40d04bb4f93965fa4",
    "sufferage": "5220b5a580a9036a113f868b3c206d3d57629da6a8e959ec90dc19bb1fa1ad90",
}


def plan_digest(plan) -> str:
    payload = ",".join(f"{p.request.index}:{p.machine_index}" for p in plan)
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.fixture(scope="module")
def scale_case():
    spec = ScenarioSpec(
        n_tasks=GOLDEN_SCALE_SPEC["n_tasks"],
        n_machines=GOLDEN_SCALE_SPEC["n_machines"],
        target_load=3.0,
    )
    scenario = materialize(spec, seed=GOLDEN_SCALE_SPEC["seed"])
    costs = CostProvider(
        grid=scenario.grid, eec=scenario.eec, policy=TrustPolicy(True)
    )
    return list(scenario.requests), costs


@pytest.mark.parametrize(
    "key,Heuristic",
    [
        ("min-min", FastMinMinHeuristic),
        ("min-min", HeapMinMinHeuristic),
        ("max-min", FastMaxMinHeuristic),
        ("max-min", HeapMaxMinHeuristic),
        ("sufferage", FastSufferageHeuristic),
        ("sufferage", HeapSufferageHeuristic),
    ],
    ids=lambda v: v if isinstance(v, str) else v.__name__,
)
def test_scale_hash_goldens(scale_case, key, Heuristic):
    requests, costs = scale_case
    n_machines = GOLDEN_SCALE_SPEC["n_machines"]
    plan = Heuristic().plan(requests, costs, np.zeros(n_machines))
    assert len(plan) == GOLDEN_SCALE_SPEC["n_tasks"]
    assert plan_digest(plan) == GOLDEN_SCALE_HASHES[key]
