"""Tests for the heuristic base helpers."""

import numpy as np
import pytest

from repro.errors import NoFeasibleMachineError
from repro.grid.activities import ActivitySet
from repro.grid.request import Request, Task
from repro.scheduling.base import BatchHeuristic, PlannedAssignment, check_avail
from repro.scheduling.costs import CostProvider
from repro.scheduling.policy import TrustPolicy


class TestCheckAvail:
    def test_valid_vector_passes_through(self):
        out = check_avail(np.array([1.0, 2.0]), 2)
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_wrong_shape_rejected(self):
        with pytest.raises(NoFeasibleMachineError):
            check_avail(np.zeros(3), 2)
        with pytest.raises(NoFeasibleMachineError):
            check_avail(np.zeros((2, 2)), 2)

    def test_negative_times_rejected(self):
        with pytest.raises(NoFeasibleMachineError):
            check_avail(np.array([1.0, -0.1]), 2)

    def test_zero_machines_rejected(self):
        with pytest.raises(NoFeasibleMachineError):
            check_avail(np.zeros(0), 0)

    def test_list_input_coerced(self):
        out = check_avail([0.0, 5.0], 2)
        assert isinstance(out, np.ndarray)


class TestMappingMatrix:
    def test_rows_follow_request_order(self, small_grid):
        small_grid.trust_table.fill_from(np.full((2, 2, 3), 5, dtype=np.int64))
        small_grid.cd_required[:] = 1
        small_grid.rd_required[:] = 1
        eec = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        costs = CostProvider(small_grid, eec, TrustPolicy.aware())
        reqs = []
        for i in range(2):
            task = Task(index=i, activities=ActivitySet.of(small_grid.catalog.by_index(0)))
            reqs.append(
                Request(index=i, client=small_grid.clients[0], task=task, arrival_time=0.0)
            )
        matrix = BatchHeuristic.mapping_matrix(list(reversed(reqs)), costs)
        np.testing.assert_allclose(matrix[0], [4.0, 5.0, 6.0])
        np.testing.assert_allclose(matrix[1], [1.0, 2.0, 3.0])

    def test_empty_batch_shape(self, small_grid):
        costs = CostProvider(small_grid, np.ones((1, 3)), TrustPolicy.aware())
        matrix = BatchHeuristic.mapping_matrix([], costs)
        assert matrix.shape == (0, 3)


class TestPlannedAssignment:
    def test_fields(self, small_grid):
        task = Task(index=0, activities=ActivitySet.of(small_grid.catalog.by_index(0)))
        req = Request(index=0, client=small_grid.clients[0], task=task, arrival_time=0.0)
        pa = PlannedAssignment(request=req, machine_index=1, order=0)
        assert pa.machine_index == 1
        assert pa.request is req
