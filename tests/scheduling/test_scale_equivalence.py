"""Scale-path equivalence: streaming assembly and heap-backed claims.

Three contracts are pinned here:

* **Chunked ≡ dense** — concatenating
  :meth:`~repro.scheduling.costs.CostProvider.mapping_ecc_chunks` chunks
  reproduces :meth:`~repro.scheduling.costs.CostProvider.mapping_ecc_matrix`
  bit-for-bit at any chunk size, including under hard constraints, retry
  exclusions and mid-stream trust-cache invalidation.
* **Heap ≡ fast** — the scale kernels of :mod:`repro.scheduling.scale`
  produce plans identical to the vectorised kernels (themselves proven
  bit-identical to the reference oracles by
  ``test_fast_equivalence.py``), over random workloads, both infeasible
  policies, retry state, and adversarial chunk sizes — and the
  nopython-compatible claim loop matches in both greedy modes, both as
  plain Python and through the ``REPRO_JIT=1`` dispatch.
* **Bounded memory** — the chunked assembly's peak allocation at
  n=10⁵ stays a small fraction of the dense assembly's footprint.

The ``REPRO_JIT`` opt-in must also degrade gracefully: flag set with
numba absent warns once per process and falls back to identical plans.
"""

import sys
import tracemalloc
import types
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.scheduling import scale
from repro.scheduling.constraints import InfeasiblePolicy, TrustConstraint
from repro.scheduling.costs import DEFAULT_CHUNK_TASKS, CostProvider
from repro.scheduling.fast import (
    FastMaxMinHeuristic,
    FastMinMinHeuristic,
    FastSufferageHeuristic,
)
from repro.scheduling.maxmin import MaxMinHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.scale import (
    JIT_ENV,
    HeapMaxMinHeuristic,
    HeapMinMinHeuristic,
    HeapSufferageHeuristic,
    _greedy_claim_loop,
    _reset_jit_state,
    jit_available,
    jit_requested,
)
from repro.scheduling.sufferage import SufferageHeuristic
from repro.workloads.scenario import ScenarioSpec, materialize

PAIRS = [
    (FastMinMinHeuristic, HeapMinMinHeuristic),
    (FastMaxMinHeuristic, HeapMaxMinHeuristic),
    (FastSufferageHeuristic, HeapSufferageHeuristic),
]

#: Adversarial streaming granularities: single-row chunks, a size that
#: never divides the workload, one chunk covering everything.
CHUNK_SIZES = [1, 7, 10_000]


def plans_equal(a, b) -> bool:
    return [(p.request.index, p.machine_index, p.order) for p in a] == [
        (p.request.index, p.machine_index, p.order) for p in b
    ]


def make_case(
    seed: int,
    n_tasks: int,
    n_machines: int,
    trust_aware: bool,
    constraint: TrustConstraint | None = None,
):
    spec = ScenarioSpec(n_tasks=n_tasks, n_machines=n_machines, target_load=3.0)
    scenario = materialize(spec, seed=seed)
    policy = TrustPolicy(trust_aware)
    costs = CostProvider(
        grid=scenario.grid, eec=scenario.eec, policy=policy, constraint=constraint
    )
    return scenario, costs


def apply_retry_state(scenario, costs, seed: int) -> None:
    """Exclude a few request/machine pairs and invalidate a few TC rows,
    mimicking the scheduler's retry re-pricing mid-run."""
    rng = np.random.default_rng(seed)
    requests = scenario.requests
    n_machines = scenario.grid.n_machines
    for req in rng.choice(requests, size=min(3, len(requests)), replace=False):
        costs.exclude(req.index, int(rng.integers(n_machines)))
    for req in rng.choice(requests, size=min(2, len(requests)), replace=False):
        costs.invalidate_trust_cache(req.index)


# -- chunked assembly ≡ dense assembly ---------------------------------------


class TestChunkedAssembly:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_tasks=st.integers(min_value=0, max_value=40),
        chunk_size=st.integers(min_value=1, max_value=45),
        trust_aware=st.booleans(),
        constrained=st.booleans(),
        with_retry_state=st.booleans(),
    )
    def test_property_bit_identity(
        self, seed, n_tasks, chunk_size, trust_aware, constrained, with_retry_state
    ):
        constraint = (
            TrustConstraint(
                max_trust_cost=seed % 7,
                infeasible=list(InfeasiblePolicy)[seed % 2],
            )
            if constrained
            else None
        )
        scenario, costs = make_case(
            seed, max(n_tasks, 1), 5, trust_aware, constraint=constraint
        )
        if with_retry_state:
            apply_retry_state(scenario, costs, seed)
        requests = list(scenario.requests)[:n_tasks]
        dense = costs.mapping_ecc_matrix(requests)
        starts = []
        parts = []
        for start, chunk in costs.mapping_ecc_chunks(requests, chunk_size=chunk_size):
            starts.append(start)
            parts.append(chunk)
        assert starts == list(range(0, len(requests), chunk_size))
        stacked = (
            np.concatenate(parts) if parts else np.zeros((0, 5), dtype=np.float64)
        )
        np.testing.assert_array_equal(stacked, dense)

    def test_default_chunk_size(self):
        scenario, costs = make_case(seed=0, n_tasks=12, n_machines=3, trust_aware=True)
        requests = list(scenario.requests)
        chunks = list(costs.mapping_ecc_chunks(requests))
        assert len(chunks) == 1  # 12 tasks fit one DEFAULT_CHUNK_TASKS chunk
        assert DEFAULT_CHUNK_TASKS >= 4096
        np.testing.assert_array_equal(
            chunks[0][1], costs.mapping_ecc_matrix(requests)
        )

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_chunk_size_rejected(self, bad):
        scenario, costs = make_case(seed=1, n_tasks=4, n_machines=3, trust_aware=True)
        with pytest.raises(ConfigurationError):
            next(costs.mapping_ecc_chunks(list(scenario.requests), chunk_size=bad))

    def test_mid_stream_invalidation_reprices_later_chunks(self):
        # Retry state applied *between* chunk fetches must affect exactly
        # the not-yet-streamed rows — the dense matrix assembled afterwards
        # agrees with a re-streamed pass, proving the provider's caches
        # stay coherent under mid-run invalidation.
        scenario, costs = make_case(seed=2, n_tasks=20, n_machines=4, trust_aware=True)
        requests = list(scenario.requests)
        stream = costs.mapping_ecc_chunks(requests, chunk_size=5)
        _start, first = next(stream)
        victim = requests[12]
        costs.exclude(victim.index, 1)
        costs.invalidate_trust_cache(victim.index)
        rest = [chunk for _s, chunk in stream]
        streamed = np.concatenate([first, *rest])
        dense_after = costs.mapping_ecc_matrix(requests)
        np.testing.assert_array_equal(streamed, dense_after)
        assert np.isinf(dense_after[12, 1])


# -- heap kernels ≡ fast kernels ---------------------------------------------


@pytest.mark.parametrize("Fast,Heap", PAIRS, ids=lambda c: c.__name__)
class TestHeapEquivalence:
    def test_empty_batch(self, Fast, Heap):
        _, costs = make_case(seed=3, n_tasks=2, n_machines=3, trust_aware=True)
        assert Heap().plan([], costs, np.zeros(3)) == []

    def test_single_machine(self, Fast, Heap):
        scenario, costs = make_case(seed=2, n_tasks=8, n_machines=1, trust_aware=True)
        fast = Fast().plan(list(scenario.requests), costs, np.zeros(1))
        heap = Heap(chunk_size=3).plan(list(scenario.requests), costs, np.zeros(1))
        assert plans_equal(fast, heap)

    def test_tied_costs(self, Fast, Heap):
        # A uniform EEC matrix makes every completion a tie: the plans agree
        # only if the heap path reproduces the frozen tie-breaks exactly.
        scenario, costs = make_case(seed=4, n_tasks=12, n_machines=4, trust_aware=False)
        costs.eec = np.full_like(costs.eec, 7.0)
        fast = Fast().plan(list(scenario.requests), costs, np.zeros(4))
        heap = Heap(chunk_size=5).plan(list(scenario.requests), costs, np.zeros(4))
        assert plans_equal(fast, heap)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_tasks=st.integers(min_value=1, max_value=30),
        n_machines=st.integers(min_value=1, max_value=8),
        trust_aware=st.booleans(),
        chunk_size=st.sampled_from(CHUNK_SIZES),
    )
    def test_property_equivalence(
        self, Fast, Heap, seed, n_tasks, n_machines, trust_aware, chunk_size
    ):
        scenario, costs = make_case(seed, n_tasks, n_machines, trust_aware)
        avail = np.random.default_rng(seed + 1).uniform(0, 500, size=n_machines)
        fast = Fast().plan(list(scenario.requests), costs, avail.copy())
        heap = Heap(chunk_size=chunk_size).plan(
            list(scenario.requests), costs, avail.copy()
        )
        assert plans_equal(fast, heap)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        max_tc=st.integers(min_value=0, max_value=6),
        infeasible=st.sampled_from(list(InfeasiblePolicy)),
    )
    def test_property_equivalence_under_constraint(
        self, Fast, Heap, seed, max_tc, infeasible
    ):
        # Tight constraints produce +inf-masked (and, under REJECT, all-inf)
        # rows — the hardest territory for claim-queue tie-breaks, where
        # the earlier lazy-bound Max-min design was caught diverging.
        constraint = TrustConstraint(max_trust_cost=max_tc, infeasible=infeasible)
        scenario, costs = make_case(
            seed, n_tasks=18, n_machines=5, trust_aware=True, constraint=constraint
        )
        avail = np.random.default_rng(seed + 1).uniform(0, 200, size=5)
        fast = Fast().plan(list(scenario.requests), costs, avail.copy())
        heap = Heap(chunk_size=7).plan(list(scenario.requests), costs, avail.copy())
        assert plans_equal(fast, heap)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_equivalence_with_retry_state(self, Fast, Heap, seed):
        scenario, costs = make_case(seed, n_tasks=16, n_machines=4, trust_aware=True)
        apply_retry_state(scenario, costs, seed)
        fast = Fast().plan(list(scenario.requests), costs, np.zeros(4))
        heap = Heap(chunk_size=3).plan(list(scenario.requests), costs, np.zeros(4))
        assert plans_equal(fast, heap)


# -- the nopython-compatible claim loop, uncompiled ---------------------------


class TestClaimLoop:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_tasks=st.integers(min_value=1, max_value=25),
        n_machines=st.integers(min_value=1, max_value=6),
        prefer_max=st.booleans(),
        constrained=st.booleans(),
    )
    def test_property_matches_fast(
        self, seed, n_tasks, n_machines, prefer_max, constrained
    ):
        constraint = (
            TrustConstraint(
                max_trust_cost=seed % 5,
                infeasible=list(InfeasiblePolicy)[seed % 2],
            )
            if constrained
            else None
        )
        scenario, costs = make_case(
            seed, n_tasks, n_machines, trust_aware=True, constraint=constraint
        )
        requests = list(scenario.requests)
        avail = np.random.default_rng(seed + 1).uniform(0, 300, size=n_machines)
        ecc = costs.mapping_ecc_matrix(requests)
        positions, machines = _greedy_claim_loop(ecc, avail.copy(), prefer_max)
        Fast = FastMaxMinHeuristic if prefer_max else FastMinMinHeuristic
        fast = Fast().plan(requests, costs, avail.copy())
        got = [(int(p), int(m)) for p, m in zip(positions, machines)]
        pos_of = {id(r): i for i, r in enumerate(requests)}
        want = [(pos_of[id(p.request)], p.machine_index) for p in fast]
        assert got == want


# -- REPRO_JIT dispatch and graceful degradation ------------------------------


@pytest.fixture
def jit_state():
    _reset_jit_state()
    yield
    _reset_jit_state()


class TestJitFlag:
    def test_flag_off_means_no_jit(self, monkeypatch, jit_state):
        monkeypatch.delenv(JIT_ENV, raising=False)
        assert not jit_requested()
        assert scale._resolve_jit_loop() is None

    def test_missing_numba_warns_once_and_matches(self, monkeypatch, jit_state):
        monkeypatch.setenv(JIT_ENV, "1")
        # Forcing the import to fail keeps the test honest even on
        # machines that do have numba installed.
        monkeypatch.setitem(sys.modules, "numba", None)
        assert jit_requested()
        assert not jit_available()

        scenario, costs = make_case(seed=5, n_tasks=14, n_machines=4, trust_aware=True)
        requests = list(scenario.requests)
        with pytest.warns(RuntimeWarning, match="numba is not importable"):
            degraded = HeapMinMinHeuristic(chunk_size=5).plan(
                requests, costs, np.zeros(4)
            )
        fast = FastMinMinHeuristic().plan(requests, costs, np.zeros(4))
        assert plans_equal(degraded, fast)

        # Warned once per process: a second plan stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = HeapMaxMinHeuristic(chunk_size=5).plan(requests, costs, np.zeros(4))
        assert plans_equal(again, FastMaxMinHeuristic().plan(requests, costs, np.zeros(4)))

    def test_jit_dispatch_uses_claim_loop(self, monkeypatch, jit_state):
        # A stand-in numba whose njit is the identity decorator proves the
        # dispatch routes both greedy modes through _greedy_claim_loop and
        # that the result is still bit-identical to the vectorised kernels.
        fake = types.SimpleNamespace(njit=lambda **kwargs: (lambda fn: fn))
        monkeypatch.setenv(JIT_ENV, "1")
        monkeypatch.setitem(sys.modules, "numba", fake)
        assert jit_available()
        assert scale._resolve_jit_loop() is _greedy_claim_loop

        scenario, costs = make_case(seed=6, n_tasks=16, n_machines=4, trust_aware=True)
        requests = list(scenario.requests)
        for Fast, Heap in ((FastMinMinHeuristic, HeapMinMinHeuristic),
                           (FastMaxMinHeuristic, HeapMaxMinHeuristic)):
            fast = Fast().plan(requests, costs, np.zeros(4))
            jit = Heap(chunk_size=5).plan(requests, costs, np.zeros(4))
            assert plans_equal(fast, jit)


# -- memory bound of the streaming assembly -----------------------------------


class TestChunkedMemoryBound:
    def test_chunked_assembly_peak_is_fraction_of_dense(self):
        # n=10⁵ tasks, 16 machines: the dense assembly materialises the
        # (n, m) ECC matrix plus same-shaped EEC/TC intermediates; the
        # chunked pass must peak at one chunk plus O(n) reduction arrays.
        n, m = 100_000, 16
        spec = ScenarioSpec(n_tasks=n, n_machines=m, target_load=3.0)
        scenario = materialize(spec, seed=0)
        requests = list(scenario.requests)

        # One warm-up pass per provider first: the pricing-key and TC row
        # caches are O(n) one-time state built identically by both paths,
        # and the bound under test is the *assembly's* working set.
        costs = CostProvider(
            grid=scenario.grid, eec=scenario.eec, policy=TrustPolicy(True)
        )
        checksum_dense = float(np.nansum(costs.mapping_ecc_matrix(requests)))
        tracemalloc.start()
        dense = costs.mapping_ecc_matrix(requests)
        _, dense_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del dense

        tracemalloc.start()
        total = 0.0
        for _start, chunk in costs.mapping_ecc_chunks(requests, chunk_size=4096):
            total += float(np.nansum(chunk))
        _, chunked_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert total == pytest.approx(checksum_dense)
        assert dense_peak >= n * m * 8  # sanity: the dense matrix was counted
        # The bound is deliberately loose (4×) against allocator noise; the
        # measured ratio is far smaller (~0.05).
        assert chunked_peak < dense_peak / 4


# -- registry / labels / oracle hooks -----------------------------------------


class TestRegistryExposure:
    def test_heap_variants_registered(self):
        from repro.scheduling.registry import is_batch, make_heuristic

        assert isinstance(make_heuristic("min-min-heap"), HeapMinMinHeuristic)
        assert isinstance(make_heuristic("max-min-heap"), HeapMaxMinHeuristic)
        assert isinstance(make_heuristic("sufferage-heap"), HeapSufferageHeuristic)
        for name in ("min-min-heap", "max-min-heap", "sufferage-heap"):
            assert is_batch(name)

    def test_kernel_labels(self):
        for Heap in (HeapMinMinHeuristic, HeapMaxMinHeuristic, HeapSufferageHeuristic):
            assert Heap.kernel == "heap"

    def test_reference_oracle_hooks(self):
        scenario, costs = make_case(seed=6, n_tasks=6, n_machines=3, trust_aware=True)
        avail = np.zeros(3)
        requests = list(scenario.requests)
        oracles = {
            HeapMinMinHeuristic: MinMinHeuristic,
            HeapMaxMinHeuristic: MaxMinHeuristic,
            HeapSufferageHeuristic: SufferageHeuristic,
        }
        for Heap, Reference in oracles.items():
            heuristic = Heap(chunk_size=2)
            assert plans_equal(
                heuristic.plan(requests, costs, avail),
                heuristic._reference_plan(requests, costs, avail),
            )
            assert isinstance(
                heuristic._reference_plan(requests, costs, avail)[0].order, int
            )
