"""Tests for pluggable ESC models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scheduling.esc_models import LadderEsc, LinearEsc, TableEsc
from repro.scheduling.policy import TrustPolicy
from repro.security.overhead import DEFAULT_LADDER, Mechanism, SupplementLadder


class TestLinearEsc:
    def test_matches_paper_formula(self):
        model = LinearEsc(weight=15.0)
        eec = np.array([100.0, 200.0])
        tc = np.array([3.0, 6.0])
        np.testing.assert_allclose(model.esc(eec, tc), [45.0, 180.0])

    def test_zero_tc_zero_cost(self):
        model = LinearEsc()
        np.testing.assert_allclose(model.esc(np.array([50.0]), np.array([0.0])), [0.0])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            LinearEsc(weight=-1.0)
        with pytest.raises(ValueError):
            LinearEsc().fractions(np.array([-1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinearEsc().esc(np.array([1.0, 2.0]), np.array([1.0]))

    @given(st.floats(min_value=0, max_value=6), st.floats(min_value=0.1, max_value=1e3))
    def test_proportionality(self, tc, eec):
        model = LinearEsc(weight=15.0)
        out = model.esc(np.array([eec]), np.array([tc]))
        assert out[0] == pytest.approx(eec * tc * 0.15)


class TestTableEsc:
    def test_integer_lookup(self):
        model = TableEsc(table=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6))
        np.testing.assert_allclose(
            model.fractions(np.array([0.0, 3.0, 6.0])), [0.0, 0.3, 0.6]
        )

    def test_interpolation(self):
        model = TableEsc(table=(0.0, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2))
        assert model.fractions(np.array([0.5]))[0] == pytest.approx(0.1)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            TableEsc(table=(0.0, 0.1))

    def test_out_of_range_tc_rejected(self):
        model = TableEsc(table=(0.0,) * 7)
        with pytest.raises(ValueError):
            model.fractions(np.array([7.0]))


class TestLadderEsc:
    def test_default_ladder(self):
        model = LadderEsc()
        np.testing.assert_allclose(
            model.fractions(np.arange(7.0)), DEFAULT_LADDER.overheads()
        )

    def test_custom_ladder(self):
        ladder = SupplementLadder(
            levels=tuple((Mechanism(f"m{i}", 0.1),) for i in range(6))
        )
        model = LadderEsc(ladder)
        assert model.fractions(np.array([6.0]))[0] == pytest.approx(0.6)

    def test_close_to_linear_15(self):
        """The measured ladder tracks the paper's linear model closely."""
        ladder = LadderEsc()
        linear = LinearEsc(15.0)
        tcs = np.arange(7.0)
        diff = np.abs(ladder.fractions(tcs) - linear.fractions(tcs))
        assert diff.max() < 0.12


class TestPolicyIntegration:
    def test_policy_defaults_to_linear(self):
        policy = TrustPolicy.aware()
        assert isinstance(policy.aware_model, LinearEsc)
        assert policy.aware_model.weight == 15.0

    def test_custom_model_flows_through(self):
        policy = TrustPolicy.aware(esc_model=LadderEsc())
        eec = np.array([100.0])
        tc = np.array([6.0])
        expected = 100.0 * DEFAULT_LADDER.overhead(6)
        assert policy.esc_aware(eec, tc)[0] == pytest.approx(expected)

    def test_ladder_policy_schedules_end_to_end(self):
        from repro.experiments.runner import run_single
        from repro.workloads.scenario import ScenarioSpec

        spec = ScenarioSpec(n_tasks=10, target_load=3.0)
        linear = run_single(spec, "mct", TrustPolicy.aware(), seed=0)
        ladder = run_single(
            spec, "mct", TrustPolicy.aware(esc_model=LadderEsc()), seed=0
        )
        # Both complete; costs differ but stay in the same ballpark.
        assert len(ladder) == len(linear) == 10
        ratio = ladder.average_completion_time / linear.average_completion_time
        assert 0.7 < ratio < 1.3
