"""Tests for the heuristic registry."""

import pytest

from repro.errors import ConfigurationError
from repro.scheduling.base import BatchHeuristic, ImmediateHeuristic
from repro.scheduling.mct import MctHeuristic
from repro.scheduling.registry import (
    batch_names,
    heuristic_names,
    immediate_names,
    is_batch,
    make_heuristic,
    register_heuristic,
)


class TestRegistry:
    def test_paper_heuristics_present(self):
        names = heuristic_names()
        for name in ("mct", "min-min", "sufferage"):
            assert name in names

    def test_baselines_present(self):
        names = heuristic_names()
        for name in ("met", "olb", "kpb", "sa", "max-min", "duplex"):
            assert name in names

    def test_make_heuristic_instantiates(self):
        assert isinstance(make_heuristic("mct"), ImmediateHeuristic)
        assert isinstance(make_heuristic("sufferage"), BatchHeuristic)

    def test_name_normalised(self):
        assert isinstance(make_heuristic("  MCT "), MctHeuristic)

    def test_fresh_instance_per_call(self):
        assert make_heuristic("sa") is not make_heuristic("sa")

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ConfigurationError, match="min-min"):
            make_heuristic("nope")

    def test_mode_partition(self):
        assert set(immediate_names()) | set(batch_names()) == set(heuristic_names())
        assert not set(immediate_names()) & set(batch_names())
        assert is_batch("min-min") and not is_batch("mct")

    def test_register_custom_and_reject_duplicates(self):
        class Custom(MctHeuristic):
            name = "custom-test"

        register_heuristic("custom-test", Custom)
        try:
            assert isinstance(make_heuristic("custom-test"), Custom)
            with pytest.raises(ConfigurationError, match="already"):
                register_heuristic("custom-test", Custom)
        finally:
            from repro.scheduling import registry

            registry._REGISTRY.pop("custom-test", None)
