"""Tests for hard trust constraints and admission control."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scheduling.constraints import InfeasiblePolicy, TrustConstraint
from repro.scheduling.mct import MctHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.scheduler import REASON_CONSTRAINT, TRMScheduler
from repro.scheduling.sufferage import SufferageHeuristic
from repro.workloads.scenario import ScenarioSpec, materialize


class TestTrustConstraint:
    def test_feasible_mask(self):
        c = TrustConstraint(max_trust_cost=2)
        mask = c.feasible_mask(np.array([0.0, 2.0, 3.0, 6.0]))
        assert mask.tolist() == [True, True, False, False]

    def test_apply_prices_infeasible_at_inf(self):
        c = TrustConstraint(max_trust_cost=1)
        out = c.apply(np.array([10.0, 20.0]), np.array([0.0, 4.0]))
        assert out[0] == 10.0
        assert np.isinf(out[1])

    def test_relax_returns_unconstrained_when_nothing_feasible(self):
        c = TrustConstraint(max_trust_cost=0, infeasible=InfeasiblePolicy.RELAX)
        out = c.apply(np.array([10.0, 20.0]), np.array([3.0, 4.0]))
        np.testing.assert_allclose(out, [10.0, 20.0])

    def test_reject_returns_all_inf_when_nothing_feasible(self):
        c = TrustConstraint(max_trust_cost=0, infeasible=InfeasiblePolicy.REJECT)
        out = c.apply(np.array([10.0, 20.0]), np.array([3.0, 4.0]))
        assert np.all(np.isinf(out))

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            TrustConstraint(max_trust_cost=7)
        with pytest.raises(ConfigurationError):
            TrustConstraint(max_trust_cost=-1)


@pytest.fixture
def scenario():
    # High trust variance scenario: several RDs so TCs differ per machine.
    return materialize(
        ScenarioSpec(n_tasks=30, target_load=4.0, rd_range=(4, 4), cd_range=(2, 2)),
        seed=3,
    )


class TestConstrainedScheduling:
    def test_relaxed_constraint_respects_threshold_where_possible(self, scenario):
        constraint = TrustConstraint(max_trust_cost=1)
        scheduler = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            MctHeuristic(),
            constraint=constraint,
        )
        result = scheduler.run(scenario.requests)
        assert not result.rejected
        for rec in result.records:
            request = scenario.requests[rec.request_index]
            tc_row = scheduler.costs.trust_cost_row(request)
            if (tc_row <= 1).any():
                assert rec.trust_cost <= 1, (
                    f"request {rec.request_index} had a feasible machine but "
                    f"ran at TC {rec.trust_cost}"
                )

    def test_reject_policy_drops_infeasible_requests(self, scenario):
        constraint = TrustConstraint(
            max_trust_cost=0, infeasible=InfeasiblePolicy.REJECT
        )
        scheduler = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            MctHeuristic(),
            constraint=constraint,
        )
        result = scheduler.run(scenario.requests)
        assert len(result.records) + len(result.rejected) == 30
        # Every mapped request honours the hard bound.
        for rec in result.records:
            assert rec.trust_cost == 0
        assert result.rejection_rate == len(result.rejected) / 30

    def test_reject_in_batch_mode(self, scenario):
        constraint = TrustConstraint(
            max_trust_cost=0, infeasible=InfeasiblePolicy.REJECT
        )
        result = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            MinMinHeuristic(),
            batch_interval=300.0,
            constraint=constraint,
        ).run(scenario.requests)
        assert len(result.records) + len(result.rejected) == 30
        for rec in result.records:
            assert rec.trust_cost == 0

    def test_reject_in_batch_mode_sufferage(self, scenario):
        constraint = TrustConstraint(
            max_trust_cost=0, infeasible=InfeasiblePolicy.REJECT
        )
        result = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            SufferageHeuristic(),
            batch_interval=300.0,
            constraint=constraint,
        ).run(scenario.requests)
        assert len(result.records) + len(result.rejected) == 30
        assert result.rejected, "TC=0 on this scenario must reject something"
        for rec in result.records:
            assert rec.trust_cost == 0

    def test_rejections_carry_a_reason(self, scenario):
        constraint = TrustConstraint(
            max_trust_cost=0, infeasible=InfeasiblePolicy.REJECT
        )
        result = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            MinMinHeuristic(),
            batch_interval=300.0,
            constraint=constraint,
        ).run(scenario.requests)
        assert result.rejected
        assert set(result.rejection_reasons) == set(result.rejected)
        assert set(result.rejection_reasons.values()) == {REASON_CONSTRAINT}
        summary = result.summary()
        assert summary["rejected"] == result.n_rejected
        assert summary["rejection_reasons"] == {
            REASON_CONSTRAINT: result.n_rejected
        }
        assert (
            summary["completed"] + summary["rejected"] + summary["dropped"]
            == summary["submitted"]
        )

    def test_noop_constraint_changes_nothing(self, scenario):
        base = TRMScheduler(
            scenario.grid, scenario.eec, TrustPolicy.aware(), MctHeuristic()
        ).run(scenario.requests)
        constrained = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            MctHeuristic(),
            constraint=TrustConstraint(max_trust_cost=6),
        ).run(scenario.requests)
        assert [r.completion_time for r in base.records] == [
            r.completion_time for r in constrained.records
        ]

    def test_rejection_rate_empty_run(self):
        from repro.scheduling.result import ScheduleResult

        result = ScheduleResult(
            heuristic="mct", policy_label="trust-aware", records=(), machine_states=()
        )
        assert result.rejection_rate == 0.0
