"""Equivalence of the vectorised fast paths with the reference heuristics.

The fast implementations must produce *identical plans* — same
request→machine assignments in the same order — for arbitrary scenarios,
including under hard trust constraints, retry exclusions and trust-cache
invalidation.  The batched ``mapping_ecc_matrix`` assembly must likewise be
bit-identical to stacking reference rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.base import BatchHeuristic
from repro.scheduling.constraints import InfeasiblePolicy, TrustConstraint
from repro.scheduling.costs import CostProvider
from repro.scheduling.fast import (
    FastKpbHeuristic,
    FastMaxMinHeuristic,
    FastMinMinHeuristic,
    FastSufferageHeuristic,
)
from repro.scheduling.kpb import KpbHeuristic
from repro.scheduling.maxmin import MaxMinHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.sufferage import SufferageHeuristic
from repro.workloads.scenario import ScenarioSpec, materialize

PAIRS = [
    (MinMinHeuristic, FastMinMinHeuristic),
    (MaxMinHeuristic, FastMaxMinHeuristic),
    (SufferageHeuristic, FastSufferageHeuristic),
]


def plans_equal(a, b) -> bool:
    return [(p.request.index, p.machine_index, p.order) for p in a] == [
        (p.request.index, p.machine_index, p.order) for p in b
    ]


def make_case(
    seed: int,
    n_tasks: int,
    n_machines: int,
    trust_aware: bool,
    constraint: TrustConstraint | None = None,
):
    spec = ScenarioSpec(n_tasks=n_tasks, n_machines=n_machines, target_load=3.0)
    scenario = materialize(spec, seed=seed)
    policy = TrustPolicy(trust_aware)
    costs = CostProvider(
        grid=scenario.grid, eec=scenario.eec, policy=policy, constraint=constraint
    )
    return scenario, costs


def apply_retry_state(scenario, costs, seed: int) -> None:
    """Exclude a few request/machine pairs and invalidate a few TC rows,
    mimicking the scheduler's retry re-pricing mid-run."""
    rng = np.random.default_rng(seed)
    requests = scenario.requests
    n_machines = scenario.grid.n_machines
    for req in rng.choice(requests, size=min(3, len(requests)), replace=False):
        costs.exclude(req.index, int(rng.integers(n_machines)))
    for req in rng.choice(requests, size=min(2, len(requests)), replace=False):
        costs.invalidate_trust_cache(req.index)


@pytest.mark.parametrize("Reference,Fast", PAIRS, ids=lambda c: c.__name__)
class TestEquivalence:
    def test_idle_machines(self, Reference, Fast):
        scenario, costs = make_case(seed=0, n_tasks=20, n_machines=5, trust_aware=True)
        avail = np.zeros(5)
        ref = Reference().plan(list(scenario.requests), costs, avail)
        fast = Fast().plan(list(scenario.requests), costs, avail)
        assert plans_equal(ref, fast)

    def test_loaded_machines(self, Reference, Fast):
        scenario, costs = make_case(seed=1, n_tasks=15, n_machines=4, trust_aware=False)
        avail = np.array([100.0, 0.0, 250.0, 40.0])
        ref = Reference().plan(list(scenario.requests), costs, avail)
        fast = Fast().plan(list(scenario.requests), costs, avail)
        assert plans_equal(ref, fast)

    def test_single_machine(self, Reference, Fast):
        scenario, costs = make_case(seed=2, n_tasks=8, n_machines=1, trust_aware=True)
        ref = Reference().plan(list(scenario.requests), costs, np.zeros(1))
        fast = Fast().plan(list(scenario.requests), costs, np.zeros(1))
        assert plans_equal(ref, fast)

    def test_empty_batch(self, Reference, Fast):
        _, costs = make_case(seed=3, n_tasks=2, n_machines=3, trust_aware=True)
        assert Fast().plan([], costs, np.zeros(3)) == []

    def test_tied_costs(self, Reference, Fast):
        # A uniform EEC matrix makes every completion a tie: the plans agree
        # only if the fast path reproduces the reference tie-breaks exactly.
        scenario, costs = make_case(seed=4, n_tasks=12, n_machines=4, trust_aware=False)
        costs.eec = np.full_like(costs.eec, 7.0)
        ref = Reference().plan(list(scenario.requests), costs, np.zeros(4))
        fast = Fast().plan(list(scenario.requests), costs, np.zeros(4))
        assert plans_equal(ref, fast)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_tasks=st.integers(min_value=1, max_value=30),
        n_machines=st.integers(min_value=1, max_value=8),
        trust_aware=st.booleans(),
    )
    def test_property_equivalence(self, Reference, Fast, seed, n_tasks, n_machines, trust_aware):
        scenario, costs = make_case(seed, n_tasks, n_machines, trust_aware)
        avail_rng = np.random.default_rng(seed + 1)
        avail = avail_rng.uniform(0, 500, size=n_machines)
        ref = Reference().plan(list(scenario.requests), costs, avail.copy())
        fast = Fast().plan(list(scenario.requests), costs, avail.copy())
        assert plans_equal(ref, fast)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        max_tc=st.integers(min_value=0, max_value=6),
        infeasible=st.sampled_from(list(InfeasiblePolicy)),
    )
    def test_property_equivalence_under_constraint(
        self, Reference, Fast, seed, max_tc, infeasible
    ):
        # Tight constraints produce +inf-masked (and, under REJECT, all-inf)
        # rows — the hardest tie-break territory for the incremental kernels.
        constraint = TrustConstraint(max_trust_cost=max_tc, infeasible=infeasible)
        scenario, costs = make_case(
            seed, n_tasks=18, n_machines=5, trust_aware=True, constraint=constraint
        )
        avail = np.random.default_rng(seed + 1).uniform(0, 200, size=5)
        ref = Reference().plan(list(scenario.requests), costs, avail.copy())
        fast = Fast().plan(list(scenario.requests), costs, avail.copy())
        assert plans_equal(ref, fast)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_equivalence_with_retry_state(self, Reference, Fast, seed):
        scenario, costs = make_case(seed, n_tasks=16, n_machines=4, trust_aware=True)
        apply_retry_state(scenario, costs, seed)
        ref = Reference().plan(list(scenario.requests), costs, np.zeros(4))
        fast = Fast().plan(list(scenario.requests), costs, np.zeros(4))
        assert plans_equal(ref, fast)


class TestKpbEquivalence:
    """The immediate-mode KPB fast path must make identical choices."""

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_machines=st.integers(min_value=1, max_value=12),
        k_percent=st.sampled_from([10.0, 25.0, 40.0, 75.0, 100.0]),
        trust_aware=st.booleans(),
    )
    def test_property_choice_equivalence(self, seed, n_machines, k_percent, trust_aware):
        scenario, costs = make_case(seed, 10, n_machines, trust_aware)
        avail = np.random.default_rng(seed + 1).uniform(0, 300, size=n_machines)
        ref = KpbHeuristic(k_percent)
        fast = FastKpbHeuristic(k_percent)
        for req in scenario.requests:
            assert fast.choose(req, costs, avail) == ref.choose(req, costs, avail)

    def test_tied_costs(self):
        # Uniform costs: the candidate subset boundary is one big tie.
        scenario, costs = make_case(seed=5, n_tasks=4, n_machines=8, trust_aware=False)
        costs.eec = np.full_like(costs.eec, 3.0)
        avail = np.zeros(8)
        for req in scenario.requests:
            assert (
                FastKpbHeuristic(40.0).choose(req, costs, avail)
                == KpbHeuristic(40.0).choose(req, costs, avail)
            )


class TestMatrixEquivalence:
    """``mapping_ecc_matrix`` vs stacked ``mapping_ecc_row`` bit-identity
    under the same adversarial states the plan equivalence runs through."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        trust_aware=st.booleans(),
        constrained=st.booleans(),
        with_retry_state=st.booleans(),
    )
    def test_property_bit_identity(self, seed, trust_aware, constrained, with_retry_state):
        constraint = (
            TrustConstraint(
                max_trust_cost=seed % 7,
                infeasible=list(InfeasiblePolicy)[seed % 2],
            )
            if constrained
            else None
        )
        scenario, costs = make_case(seed, 14, 4, trust_aware, constraint=constraint)
        if with_retry_state:
            apply_retry_state(scenario, costs, seed)
        requests = list(scenario.requests)
        reference = BatchHeuristic.mapping_matrix(requests, costs)
        np.testing.assert_array_equal(costs.mapping_ecc_matrix(requests), reference)


class TestRegistryExposure:
    def test_fast_variants_registered(self):
        from repro.scheduling.registry import is_batch, make_heuristic

        assert isinstance(make_heuristic("min-min-fast"), FastMinMinHeuristic)
        assert isinstance(make_heuristic("max-min-fast"), FastMaxMinHeuristic)
        assert isinstance(make_heuristic("sufferage-fast"), FastSufferageHeuristic)
        assert isinstance(make_heuristic("kpb-fast"), FastKpbHeuristic)
        assert is_batch("min-min-fast") and is_batch("sufferage-fast")
        assert is_batch("max-min-fast") and not is_batch("kpb-fast")

    def test_kernel_labels(self):
        for Fast in (
            FastMinMinHeuristic,
            FastMaxMinHeuristic,
            FastSufferageHeuristic,
        ):
            assert Fast.kernel == "vectorized"
        assert FastKpbHeuristic.kernel == "vectorized"
        for Reference in (MinMinHeuristic, MaxMinHeuristic, SufferageHeuristic, KpbHeuristic):
            assert Reference.kernel == "reference"

    def test_reference_oracle_hooks(self):
        scenario, costs = make_case(seed=6, n_tasks=6, n_machines=3, trust_aware=True)
        avail = np.zeros(3)
        requests = list(scenario.requests)
        for Fast in (FastMinMinHeuristic, FastMaxMinHeuristic, FastSufferageHeuristic):
            heuristic = Fast()
            assert plans_equal(
                heuristic.plan(requests, costs, avail),
                heuristic._reference_plan(requests, costs, avail),
            )
        kpb = FastKpbHeuristic()
        assert kpb.choose(requests[0], costs, avail) == kpb._reference_choose(
            requests[0], costs, avail
        )
