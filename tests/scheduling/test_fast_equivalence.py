"""Equivalence of the vectorised fast paths with the reference heuristics.

The fast implementations must produce *identical plans* — same
request→machine assignments in the same order — for arbitrary scenarios.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.costs import CostProvider
from repro.scheduling.fast import FastMinMinHeuristic, FastSufferageHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.sufferage import SufferageHeuristic
from repro.workloads.scenario import ScenarioSpec, materialize

PAIRS = [
    (MinMinHeuristic, FastMinMinHeuristic),
    (SufferageHeuristic, FastSufferageHeuristic),
]


def plans_equal(a, b) -> bool:
    return [(p.request.index, p.machine_index, p.order) for p in a] == [
        (p.request.index, p.machine_index, p.order) for p in b
    ]


def make_case(seed: int, n_tasks: int, n_machines: int, trust_aware: bool):
    spec = ScenarioSpec(n_tasks=n_tasks, n_machines=n_machines, target_load=3.0)
    scenario = materialize(spec, seed=seed)
    policy = TrustPolicy(trust_aware)
    costs = CostProvider(grid=scenario.grid, eec=scenario.eec, policy=policy)
    return scenario, costs


@pytest.mark.parametrize("Reference,Fast", PAIRS, ids=lambda c: c.__name__)
class TestEquivalence:
    def test_idle_machines(self, Reference, Fast):
        scenario, costs = make_case(seed=0, n_tasks=20, n_machines=5, trust_aware=True)
        avail = np.zeros(5)
        ref = Reference().plan(list(scenario.requests), costs, avail)
        fast = Fast().plan(list(scenario.requests), costs, avail)
        assert plans_equal(ref, fast)

    def test_loaded_machines(self, Reference, Fast):
        scenario, costs = make_case(seed=1, n_tasks=15, n_machines=4, trust_aware=False)
        avail = np.array([100.0, 0.0, 250.0, 40.0])
        ref = Reference().plan(list(scenario.requests), costs, avail)
        fast = Fast().plan(list(scenario.requests), costs, avail)
        assert plans_equal(ref, fast)

    def test_single_machine(self, Reference, Fast):
        scenario, costs = make_case(seed=2, n_tasks=8, n_machines=1, trust_aware=True)
        ref = Reference().plan(list(scenario.requests), costs, np.zeros(1))
        fast = Fast().plan(list(scenario.requests), costs, np.zeros(1))
        assert plans_equal(ref, fast)

    def test_empty_batch(self, Reference, Fast):
        _, costs = make_case(seed=3, n_tasks=2, n_machines=3, trust_aware=True)
        assert Fast().plan([], costs, np.zeros(3)) == []

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_tasks=st.integers(min_value=1, max_value=30),
        n_machines=st.integers(min_value=1, max_value=8),
        trust_aware=st.booleans(),
    )
    def test_property_equivalence(self, Reference, Fast, seed, n_tasks, n_machines, trust_aware):
        scenario, costs = make_case(seed, n_tasks, n_machines, trust_aware)
        avail_rng = np.random.default_rng(seed + 1)
        avail = avail_rng.uniform(0, 500, size=n_machines)
        ref = Reference().plan(list(scenario.requests), costs, avail.copy())
        fast = Fast().plan(list(scenario.requests), costs, avail.copy())
        assert plans_equal(ref, fast)


class TestRegistryExposure:
    def test_fast_variants_registered(self):
        from repro.scheduling.registry import is_batch, make_heuristic

        assert isinstance(make_heuristic("min-min-fast"), FastMinMinHeuristic)
        assert isinstance(make_heuristic("sufferage-fast"), FastSufferageHeuristic)
        assert is_batch("min-min-fast") and is_batch("sufferage-fast")
