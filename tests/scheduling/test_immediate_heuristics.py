"""Tests for the immediate-mode heuristics: MCT, MET, OLB, KPB, SA."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NoFeasibleMachineError
from repro.grid.activities import ActivitySet
from repro.grid.request import Request, Task
from repro.scheduling.costs import CostProvider
from repro.scheduling.kpb import KpbHeuristic
from repro.scheduling.mct import MctHeuristic
from repro.scheduling.met import MetHeuristic
from repro.scheduling.olb import OlbHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.sa import SwitchingHeuristic


def request(grid, index=0) -> Request:
    task = Task(index=index, activities=ActivitySet.of(grid.catalog.by_index(0)))
    return Request(index=index, client=grid.clients[0], task=task, arrival_time=0.0)


@pytest.fixture
def costs(small_grid):
    """Uniform trust (TC equal across machines) so EEC drives decisions."""
    small_grid.trust_table.fill_from(np.full((2, 2, 3), 5, dtype=np.int64))
    # cd0 RTL C(3), rd RTLs B(2)/D(4) -> effective [3,4]; OTL 5 -> TC 0 everywhere.
    eec = np.array([[10.0, 4.0, 8.0]])
    return CostProvider(grid=small_grid, eec=eec, policy=TrustPolicy.aware())


class TestMct:
    def test_picks_earliest_completion(self, small_grid, costs):
        req = request(small_grid)
        # avail + eec: [0+10, 9+4, 0+8] -> machine 2.
        avail = np.array([0.0, 9.0, 0.0])
        assert MctHeuristic().choose(req, costs, avail) == 2

    def test_accounts_for_availability(self, small_grid, costs):
        req = request(small_grid)
        avail = np.zeros(3)
        assert MctHeuristic().choose(req, costs, avail) == 1

    def test_trust_shifts_choice(self, small_grid):
        # Machine 2 (rd1) becomes untrusted: RTL D(4) vs OTL A(1) -> TC 3.
        small_grid.trust_table.fill_from(np.full((2, 2, 3), 5, dtype=np.int64))
        levels = small_grid.trust_table.levels.copy()
        levels[:, 1, :] = 1
        small_grid.trust_table.fill_from(levels)
        eec = np.array([[10.0, 10.0, 8.0]])
        aware = CostProvider(small_grid, eec, TrustPolicy.aware())
        unaware = CostProvider(small_grid, eec, TrustPolicy.unaware())
        req = request(small_grid)
        avail = np.zeros(3)
        # Unaware sees 1.5x everywhere -> machine 2 cheapest.
        assert MctHeuristic().choose(req, unaware, avail) == 2
        # Aware sees 8 * 1.45 = 11.6 > 10 -> avoids machine 2.
        assert MctHeuristic().choose(req, aware, avail) in (0, 1)

    def test_bad_avail_shape(self, small_grid, costs):
        with pytest.raises(NoFeasibleMachineError):
            MctHeuristic().choose(request(small_grid), costs, np.zeros(2))


class TestMet:
    def test_ignores_availability(self, small_grid, costs):
        req = request(small_grid)
        avail = np.array([0.0, 1e9, 0.0])
        assert MetHeuristic().choose(req, costs, avail) == 1


class TestOlb:
    def test_picks_earliest_available(self, small_grid, costs):
        req = request(small_grid)
        avail = np.array([5.0, 3.0, 9.0])
        assert OlbHeuristic().choose(req, costs, avail) == 1


class TestKpb:
    def test_full_percentage_equals_mct(self, small_grid, costs):
        req = request(small_grid)
        avail = np.array([0.0, 9.0, 0.0])
        kpb = KpbHeuristic(k_percent=100.0)
        assert kpb.choose(req, costs, avail) == MctHeuristic().choose(req, costs, avail)

    def test_smallest_subset_equals_met(self, small_grid, costs):
        req = request(small_grid)
        avail = np.array([0.0, 1e9, 0.0])
        kpb = KpbHeuristic(k_percent=1.0)
        assert kpb.choose(req, costs, avail) == MetHeuristic().choose(req, costs, avail)

    def test_subset_restricts_candidates(self, small_grid, costs):
        req = request(small_grid)
        # Top ~67% by EEC = machines {1, 2}; machine 1 heavily loaded.
        avail = np.array([0.0, 100.0, 0.0])
        assert KpbHeuristic(k_percent=67.0).choose(req, costs, avail) == 2

    def test_invalid_percent(self):
        with pytest.raises(ConfigurationError):
            KpbHeuristic(k_percent=0.0)
        with pytest.raises(ConfigurationError):
            KpbHeuristic(k_percent=101.0)


class TestSwitching:
    def test_starts_in_mct_mode(self, small_grid, costs):
        req = request(small_grid)
        avail = np.array([0.0, 9.0, 0.0])  # imbalanced: ratio 0
        assert SwitchingHeuristic().choose(req, costs, avail) == 2

    def test_switches_to_met_when_balanced(self, small_grid, costs):
        req = request(small_grid)
        sa = SwitchingHeuristic(low=0.3, high=0.8)
        balanced = np.array([10.0, 9.5, 9.8])  # ratio 0.95 > high
        # MET would pick 1 even if loaded.
        assert sa.choose(req, costs, balanced) == 1

    def test_all_idle_counts_as_balanced(self, small_grid, costs):
        req = request(small_grid)
        sa = SwitchingHeuristic(low=0.3, high=0.8)
        assert sa.choose(req, costs, np.zeros(3)) == 1  # ratio treated as 1.0 -> MET

    def test_switches_back_under_imbalance(self, small_grid, costs):
        req = request(small_grid)
        sa = SwitchingHeuristic(low=0.5, high=0.9)
        sa.choose(req, costs, np.array([10.0, 10.0, 10.0]))  # -> MET mode
        choice = sa.choose(req, costs, np.array([1.0, 100.0, 1.0]))  # ratio 0.01 -> MCT
        assert choice in (0, 2)

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            SwitchingHeuristic(low=0.9, high=0.5)
