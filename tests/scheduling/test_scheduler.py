"""Tests for the TRM scheduler (event-driven execution)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.grid.activities import ActivitySet
from repro.grid.request import Request, Task
from repro.scheduling.mct import MctHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.scheduler import TRMScheduler
from repro.sim.trace import Tracer


def neutral_trust(grid):
    n_cd, n_rd, n_act = grid.trust_table.shape
    grid.trust_table.fill_from(np.full((n_cd, n_rd, n_act), 5, dtype=np.int64))
    grid.cd_required[:] = 1
    grid.rd_required[:] = 1


def make_requests(grid, arrivals, activities=(0,)):
    reqs = []
    for i, t in enumerate(arrivals):
        task = Task(index=i, activities=ActivitySet.of(
            [grid.catalog.by_index(a) for a in activities]))
        reqs.append(Request(index=i, client=grid.clients[0], task=task, arrival_time=t))
    return reqs


class TestConfiguration:
    def test_batch_heuristic_needs_interval(self, small_grid):
        with pytest.raises(ConfigurationError, match="batch_interval"):
            TRMScheduler(small_grid, np.ones((1, 3)), TrustPolicy.aware(), MinMinHeuristic())

    def test_immediate_heuristic_rejects_interval(self, small_grid):
        with pytest.raises(ConfigurationError):
            TRMScheduler(
                small_grid, np.ones((1, 3)), TrustPolicy.aware(), MctHeuristic(),
                batch_interval=10.0,
            )

    def test_nonpositive_interval_rejected(self, small_grid):
        with pytest.raises(ConfigurationError):
            TRMScheduler(
                small_grid, np.ones((1, 3)), TrustPolicy.aware(), MinMinHeuristic(),
                batch_interval=0.0,
            )


class TestImmediateMode:
    def test_all_requests_complete(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((5, 3), 10.0)
        reqs = make_requests(small_grid, [0.0, 1.0, 2.0, 3.0, 4.0])
        result = TRMScheduler(small_grid, eec, TrustPolicy.aware(), MctHeuristic()).run(reqs)
        assert len(result) == 5
        assert result.heuristic == "mct"
        assert result.policy_label == "trust-aware"

    def test_execution_respects_arrival(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((1, 3), 10.0)
        reqs = make_requests(small_grid, [7.0])
        result = TRMScheduler(small_grid, eec, TrustPolicy.aware(), MctHeuristic()).run(reqs)
        rec = result.records[0]
        assert rec.start_time == 7.0
        assert rec.completion_time == 17.0

    def test_queueing_on_busy_machines(self, small_grid):
        neutral_trust(small_grid)
        # One machine grid would force queuing; with 3 machines and 4
        # simultaneous tasks the 4th must wait for the first to finish.
        eec = np.full((4, 3), 10.0)
        reqs = make_requests(small_grid, [0.0, 0.0, 0.0, 0.0])
        result = TRMScheduler(small_grid, eec, TrustPolicy.aware(), MctHeuristic()).run(reqs)
        completions = sorted(r.completion_time for r in result.records)
        assert completions == [10.0, 10.0, 10.0, 20.0]
        assert result.makespan == 20.0

    def test_records_in_request_order(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((3, 3), 5.0)
        reqs = make_requests(small_grid, [2.0, 0.0, 1.0])
        result = TRMScheduler(small_grid, eec, TrustPolicy.aware(), MctHeuristic()).run(reqs)
        assert [r.request_index for r in result.records] == [0, 1, 2]

    def test_realized_cost_includes_security(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((1, 3), 10.0)
        reqs = make_requests(small_grid, [0.0])
        result = TRMScheduler(small_grid, eec, TrustPolicy.unaware(), MctHeuristic()).run(reqs)
        rec = result.records[0]
        assert rec.eec == 10.0
        assert rec.realized_cost == pytest.approx(15.0)
        assert rec.security_cost == pytest.approx(5.0)

    def test_on_complete_hook_fires_per_request(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((3, 3), 5.0)
        seen = []
        scheduler = TRMScheduler(
            small_grid, eec, TrustPolicy.aware(), MctHeuristic(),
            on_complete=lambda rec: seen.append(rec.request_index),
        )
        scheduler.run(make_requests(small_grid, [0.0, 1.0, 2.0]))
        assert sorted(seen) == [0, 1, 2]

    def test_tracer_records_events(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((2, 3), 5.0)
        tracer = Tracer()
        TRMScheduler(
            small_grid, eec, TrustPolicy.aware(), MctHeuristic(), tracer=tracer
        ).run(make_requests(small_grid, [0.0, 1.0]))
        assert len(tracer.entries("arrival")) == 2
        assert len(tracer.entries("assign")) == 2


class TestBatchMode:
    def test_requests_wait_for_batch_boundary(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((2, 3), 10.0)
        reqs = make_requests(small_grid, [1.0, 2.0])
        result = TRMScheduler(
            small_grid, eec, TrustPolicy.aware(), MinMinHeuristic(), batch_interval=5.0
        ).run(reqs)
        for rec in result.records:
            assert rec.mapped_time == 5.0
            assert rec.start_time >= 5.0

    def test_multiple_batches(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((4, 3), 1.0)
        reqs = make_requests(small_grid, [1.0, 2.0, 11.0, 12.0])
        tracer = Tracer()
        result = TRMScheduler(
            small_grid, eec, TrustPolicy.aware(), MinMinHeuristic(),
            batch_interval=10.0, tracer=tracer,
        ).run(reqs)
        batches = tracer.entries("batch")
        assert [b.detail["size"] for b in batches] == [2, 2]
        assert len(result) == 4

    def test_empty_windows_are_skipped(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((1, 3), 1.0)
        reqs = make_requests(small_grid, [25.0])
        tracer = Tracer()
        result = TRMScheduler(
            small_grid, eec, TrustPolicy.aware(), MinMinHeuristic(),
            batch_interval=10.0, tracer=tracer,
        ).run(reqs)
        # Windows at 10 and 20 are empty; the request maps at t=30.
        assert result.records[0].mapped_time == 30.0
        assert len(tracer.entries("batch")) == 1

    def test_batch_arrival_on_boundary_joins_closing_batch(self, small_grid):
        neutral_trust(small_grid)
        eec = np.full((1, 3), 1.0)
        reqs = make_requests(small_grid, [10.0])
        result = TRMScheduler(
            small_grid, eec, TrustPolicy.aware(), MinMinHeuristic(), batch_interval=10.0
        ).run(reqs)
        assert result.records[0].mapped_time == 10.0


class TestPairedDeterminism:
    def test_same_seed_same_result(self, small_scenario):
        for Heur, kw in [(MctHeuristic, {}), (MinMinHeuristic, {"batch_interval": 50.0})]:
            a = TRMScheduler(
                small_scenario.grid, small_scenario.eec, TrustPolicy.aware(), Heur(), **kw
            ).run(small_scenario.requests)
            b = TRMScheduler(
                small_scenario.grid, small_scenario.eec, TrustPolicy.aware(), Heur(), **kw
            ).run(small_scenario.requests)
            assert [r.completion_time for r in a.records] == [
                r.completion_time for r in b.records
            ]

    def test_busy_time_consistency(self, small_scenario):
        result = TRMScheduler(
            small_scenario.grid, small_scenario.eec, TrustPolicy.aware(), MctHeuristic()
        ).run(small_scenario.requests)
        total_cost = sum(r.realized_cost for r in result.records)
        total_busy = sum(s.busy_time for s in result.machine_states)
        assert total_busy == pytest.approx(total_cost)
