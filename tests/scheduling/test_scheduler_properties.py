"""Property-based end-to-end invariants of the TRM scheduler.

These fuzz whole scenarios through both modes and assert the physical
invariants any valid schedule must satisfy, independent of heuristic
quality: conservation of booked work, non-overlapping execution per
machine, causality (nothing starts before it arrives or is mapped), and
complete coverage of the request set.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.policy import SecurityAccounting, TrustPolicy
from repro.scheduling.registry import is_batch, make_heuristic
from repro.scheduling.scheduler import TRMScheduler
from repro.workloads.scenario import ScenarioSpec, materialize

HEURISTICS = ("mct", "olb", "kpb", "min-min", "max-min", "sufferage")

scenario_params = st.fixed_dictionaries(
    {
        "n_tasks": st.integers(min_value=1, max_value=25),
        "n_machines": st.integers(min_value=1, max_value=6),
        "seed": st.integers(min_value=0, max_value=10_000),
        "heuristic": st.sampled_from(HEURISTICS),
        "trust_aware": st.booleans(),
        "accounting": st.sampled_from(list(SecurityAccounting)),
        "load": st.floats(min_value=0.2, max_value=8.0),
    }
)


def run_case(params):
    spec = ScenarioSpec(
        n_tasks=params["n_tasks"],
        n_machines=params["n_machines"],
        target_load=params["load"],
    )
    scenario = materialize(spec, seed=params["seed"])
    heuristic = make_heuristic(params["heuristic"])
    policy = TrustPolicy(params["trust_aware"], accounting=params["accounting"])
    interval = 300.0 if is_batch(params["heuristic"]) else None
    scheduler = TRMScheduler(
        scenario.grid, scenario.eec, policy, heuristic, batch_interval=interval
    )
    return scenario, scheduler.run(scenario.requests)


@settings(max_examples=60, deadline=None)
@given(scenario_params)
def test_schedule_invariants(params):
    scenario, result = run_case(params)

    # Coverage: every request mapped exactly once, in request order.
    assert [r.request_index for r in result.records] == list(
        range(params["n_tasks"])
    )

    by_machine: dict[int, list] = {}
    for rec in result.records:
        # Causality.
        assert rec.mapped_time >= rec.arrival_time - 1e-9
        assert rec.start_time >= rec.mapped_time - 1e-9
        assert rec.completion_time == pytest.approx(
            rec.start_time + rec.realized_cost
        )
        # Security cost is never negative.
        assert rec.realized_cost >= rec.eec - 1e-9
        by_machine.setdefault(rec.machine_index, []).append(rec)

    # Non-overlap per machine: sorted by start, each starts after the
    # previous completes.
    for records in by_machine.values():
        records.sort(key=lambda r: r.start_time)
        for prev, nxt in zip(records, records[1:]):
            assert nxt.start_time >= prev.completion_time - 1e-9

    # Conservation: booked busy time equals the sum of realised costs.
    total_cost = sum(r.realized_cost for r in result.records)
    total_busy = sum(s.busy_time for s in result.machine_states)
    assert total_busy == pytest.approx(total_cost)

    # Makespan consistency.
    assert result.makespan == pytest.approx(
        max(r.completion_time for r in result.records)
    )
    assert max(s.available_time for s in result.machine_states) == pytest.approx(
        result.makespan
    )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    n_tasks=st.integers(min_value=2, max_value=20),
)
def test_aware_never_pays_more_than_mapping_promises(seed, n_tasks):
    """For the aware policy, mapping and realised costs coincide, so the
    realised cost at the chosen machine must equal the believed one."""
    spec = ScenarioSpec(n_tasks=n_tasks, target_load=3.0)
    scenario = materialize(spec, seed=seed)
    scheduler = TRMScheduler(
        scenario.grid, scenario.eec, TrustPolicy.aware(), make_heuristic("mct")
    )
    result = scheduler.run(scenario.requests)
    for rec in result.records:
        believed = scheduler.costs.mapping_ecc_row(
            scenario.requests[rec.request_index]
        )[rec.machine_index]
        assert rec.realized_cost == pytest.approx(float(believed))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_batch_and_online_agree_on_single_request(seed):
    """With one request, Min-min's choice equals MCT's (both minimise the
    same completion cost on idle machines)."""
    spec = ScenarioSpec(n_tasks=1, target_load=1.0)
    scenario = materialize(spec, seed=seed)
    policy = TrustPolicy.aware()
    online = TRMScheduler(
        scenario.grid, scenario.eec, policy, make_heuristic("mct")
    ).run(scenario.requests)
    batch = TRMScheduler(
        scenario.grid,
        scenario.eec,
        policy,
        make_heuristic("min-min"),
        batch_interval=1e9,  # single closing batch after the arrival
    ).run(scenario.requests)
    assert (
        online.records[0].machine_index == batch.records[0].machine_index
    )
