"""Tests for CompletionRecord and ScheduleResult."""

import pytest

from repro.grid.machine import MachineState
from repro.scheduling.result import CompletionRecord, ScheduleResult


def record(
    idx=0, machine=0, arrival=0.0, start=None, completion=None, eec=10.0, cost=15.0, tc=2.0
) -> CompletionRecord:
    start = arrival if start is None else start
    completion = start + cost if completion is None else completion
    return CompletionRecord(
        request_index=idx,
        machine_index=machine,
        arrival_time=arrival,
        mapped_time=arrival,
        start_time=start,
        completion_time=completion,
        eec=eec,
        realized_cost=cost,
        trust_cost=tc,
    )


class TestCompletionRecord:
    def test_derived_quantities(self):
        rec = record(arrival=5.0, start=8.0, completion=23.0)
        assert rec.flow_time == 18.0
        assert rec.security_cost == pytest.approx(5.0)

    def test_time_ordering_validated(self):
        with pytest.raises(ValueError):
            record(arrival=5.0, start=4.0)
        with pytest.raises(ValueError):
            record(start=10.0, completion=9.0)


def make_result(records, n_machines=2) -> ScheduleResult:
    from repro.core.levels import TrustLevel
    from repro.grid.activities import ActivityType
    from repro.grid.domain import GridDomain, ResourceDomain
    from repro.grid.machine import Machine

    gd = GridDomain(0, "x")
    rd = ResourceDomain(
        index=0,
        grid_domain=gd,
        supported_activities=frozenset({ActivityType(0, "a")}),
        required_level=TrustLevel.A,
    )
    states = []
    for m in range(n_machines):
        state = MachineState(machine=Machine(m, rd))
        for rec in records:
            if rec.machine_index == m:
                state.assign(rec.start_time, rec.realized_cost)
        states.append(state)
    return ScheduleResult(
        heuristic="mct",
        policy_label="trust-aware",
        records=tuple(records),
        machine_states=tuple(states),
    )


class TestScheduleResult:
    def test_empty_result(self):
        result = make_result([])
        assert result.makespan == 0.0
        assert result.average_completion_time == 0.0
        assert result.machine_utilization == 0.0
        assert len(result) == 0

    def test_aggregates(self):
        records = [
            record(idx=0, machine=0, arrival=0.0, cost=10.0, eec=8.0),
            record(idx=1, machine=1, arrival=0.0, cost=20.0, eec=16.0),
        ]
        result = make_result(records)
        assert result.makespan == 20.0
        assert result.average_completion_time == 15.0
        assert result.total_eec == 24.0
        assert result.total_security_cost == pytest.approx(6.0)
        assert result.security_overhead_share == pytest.approx(0.25)

    def test_utilization_against_makespan(self):
        records = [
            record(idx=0, machine=0, cost=10.0),
            record(idx=1, machine=1, cost=20.0),
        ]
        result = make_result(records)
        # machine 0 busy 10/20, machine 1 busy 20/20.
        assert result.machine_utilization == pytest.approx(0.75)

    def test_flow_time(self):
        records = [record(idx=0, arrival=2.0, start=5.0, completion=10.0)]
        result = make_result(records)
        assert result.average_flow_time == pytest.approx(8.0)
