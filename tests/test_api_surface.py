"""Quality gates on the public API surface.

Every package must export a coherent, documented surface: ``__all__``
entries must resolve, public items must carry docstrings, and the
top-level package must re-export the advertised entry points.  These
tests fail fast when a refactor breaks an export or ships an undocumented
public object.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.grid",
    "repro.sim",
    "repro.workloads",
    "repro.scheduling",
    "repro.faults",
    "repro.obs",
    "repro.security",
    "repro.metrics",
    "repro.experiments",
    "repro.analysis",
    "repro.service",
]

MODULES = [
    "repro.errors",
    "repro.cli",
    "repro.core.ets",
    "repro.core.persistence",
    "repro.grid.session",
    "repro.grid.behavior",
    "repro.sim.process",
    "repro.sim.resources",
    "repro.sim.mmpp",
    "repro.scheduling.constraints",
    "repro.faults.model",
    "repro.faults.injector",
    "repro.faults.retry",
    "repro.obs.metrics",
    "repro.obs.export",
    "repro.obs.invariants",
    "repro.obs.profile",
    "repro.scheduling.engine",
    "repro.scheduling.esc_models",
    "repro.scheduling.fast",
    "repro.service.admission",
    "repro.service.backpressure",
    "repro.service.checkpoint",
    "repro.service.replay",
    "repro.service.service",
    "repro.security.plan",
    "repro.experiments.cache",
    "repro.experiments.parallel",
    "repro.experiments.series",
    "repro.experiments.validation",
    "repro.analysis.calibration",
    "repro.analysis.collusion",
    "repro.analysis.significance",
]


@pytest.mark.parametrize("package", PACKAGES)
class TestPackageSurface:
    def test_has_all(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} lacks __all__"
        assert module.__all__, f"{package} exports nothing"

    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        missing = [n for n in module.__all__ if not hasattr(module, n)]
        assert not missing, f"{package} declares unresolvable exports: {missing}"

    def test_exports_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isroutine(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(name)
        assert not undocumented, f"{package} exports undocumented: {undocumented}"

    def test_package_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


class TestTopLevelEntryPoints:
    def test_quickstart_surface(self):
        import repro

        for name in (
            "ScenarioSpec",
            "materialize",
            "TrustPolicy",
            "TRMScheduler",
            "TrustLevel",
            "make_heuristic",
        ):
            assert hasattr(repro, name)

    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_cli_entry_point_resolves(self):
        from repro.cli import main

        assert callable(main)

    def test_error_hierarchy_rooted(self):
        import repro.errors as errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)
