"""Tests for scenario specification and materialisation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.consistency import Consistency
from repro.workloads.heterogeneity import HIHI
from repro.workloads.scenario import ScenarioSpec, materialize


class TestScenarioSpec:
    def test_defaults_match_paper(self):
        spec = ScenarioSpec()
        assert spec.n_machines == 5
        assert spec.cd_range == (1, 4)
        assert spec.rd_range == (1, 4)
        assert spec.min_toas == 1 and spec.max_toas == 4
        assert spec.n_activities == 4

    @pytest.mark.parametrize("kwargs", [
        {"n_tasks": 0},
        {"n_machines": 0},
        {"arrival_rate": 0.0},
        {"target_load": -1.0},
        {"cd_range": (0, 4)},
        {"rd_range": (3, 2)},
        {"clients_per_cd": 0},
        {"min_toas": 2, "max_toas": 1},
        {"n_activities": 0},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(**kwargs)

    def test_with_returns_modified_copy(self):
        spec = ScenarioSpec(n_tasks=50)
        other = spec.with_(n_tasks=100)
        assert other.n_tasks == 100
        assert spec.n_tasks == 50


class TestMaterialize:
    def test_deterministic_per_seed(self):
        spec = ScenarioSpec(n_tasks=10)
        a = materialize(spec, seed=3)
        b = materialize(spec, seed=3)
        np.testing.assert_array_equal(a.eec, b.eec)
        assert [r.arrival_time for r in a.requests] == [r.arrival_time for r in b.requests]
        np.testing.assert_array_equal(
            a.grid.trust_table.levels, b.grid.trust_table.levels
        )

    def test_different_seeds_differ(self):
        spec = ScenarioSpec(n_tasks=10)
        a = materialize(spec, seed=1)
        b = materialize(spec, seed=2)
        assert not np.array_equal(a.eec, b.eec)

    def test_domain_counts_within_paper_ranges(self):
        for seed in range(20):
            sc = materialize(ScenarioSpec(n_tasks=2), seed=seed)
            assert 1 <= len(sc.grid.client_domains) <= 4
            assert 1 <= len(sc.grid.resource_domains) <= 4

    def test_every_rd_gets_a_machine_when_possible(self):
        sc = materialize(ScenarioSpec(n_tasks=2, n_machines=5), seed=4)
        rds_with_machines = set(sc.grid.machine_rd.tolist())
        assert rds_with_machines == set(range(len(sc.grid.resource_domains)))

    def test_eec_shape(self):
        sc = materialize(ScenarioSpec(n_tasks=17, n_machines=3), seed=0)
        assert sc.eec.shape == (17, 3)

    def test_requests_sorted_by_arrival(self):
        sc = materialize(ScenarioSpec(n_tasks=30), seed=5)
        arrivals = [r.arrival_time for r in sc.requests]
        assert arrivals == sorted(arrivals)

    def test_batch_arrivals_all_at_zero(self):
        sc = materialize(ScenarioSpec(n_tasks=10, batch_arrivals=True), seed=0)
        assert all(r.arrival_time == 0.0 for r in sc.requests)
        assert sc.arrival_rate is None

    def test_explicit_arrival_rate_respected(self):
        spec = ScenarioSpec(n_tasks=10, arrival_rate=0.01)
        assert materialize(spec, seed=0).arrival_rate == 0.01

    def test_otl_per_pair_broadcasts_across_activities(self):
        sc = materialize(ScenarioSpec(n_tasks=2, otl_per_pair=True), seed=6)
        levels = sc.grid.trust_table.levels
        assert np.all(levels == levels[:, :, :1])

    def test_otl_per_activity_varies(self):
        # With per-activity sampling some (cd, rd) pair should show variation
        # across activities (probabilistically certain over seeds).
        varied = False
        for seed in range(10):
            sc = materialize(ScenarioSpec(n_tasks=2, otl_per_pair=False), seed=seed)
            levels = sc.grid.trust_table.levels
            if not np.all(levels == levels[:, :, :1]):
                varied = True
                break
        assert varied

    def test_f_override_flag_reaches_ets(self):
        on = materialize(ScenarioSpec(n_tasks=2, ets_f_forces_max=True), seed=0)
        off = materialize(ScenarioSpec(n_tasks=2, ets_f_forces_max=False), seed=0)
        assert on.grid.trust_table.ets.f_forces_max is True
        assert off.grid.trust_table.ets.f_forces_max is False

    def test_heterogeneity_flows_through(self):
        lo = materialize(ScenarioSpec(n_tasks=200), seed=0)
        hi = materialize(ScenarioSpec(n_tasks=200, heterogeneity=HIHI), seed=0)
        assert hi.eec.mean() > lo.eec.mean() * 10

    def test_consistent_eec_rows_sorted(self):
        sc = materialize(
            ScenarioSpec(n_tasks=20, consistency=Consistency.CONSISTENT), seed=0
        )
        assert np.all(np.diff(sc.eec, axis=1) >= 0)

    def test_task_indices_match_request_indices(self):
        sc = materialize(ScenarioSpec(n_tasks=15), seed=0)
        for r in sc.requests:
            assert r.task.index == r.index


class TestBurstiness:
    def test_bursty_arrivals_have_higher_cov(self):
        import numpy as np

        smooth = materialize(ScenarioSpec(n_tasks=300, arrival_rate=0.05), seed=4)
        bursty = materialize(
            ScenarioSpec(n_tasks=300, arrival_rate=0.05, burstiness=6.0), seed=4
        )
        def cov(scenario):
            gaps = np.diff([r.arrival_time for r in scenario.requests])
            return gaps.std() / gaps.mean()
        assert cov(bursty) > cov(smooth) * 1.2

    def test_burstiness_validated(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(burstiness=1.0)

    def test_burstiness_round_trips(self):
        from repro.workloads.serialization import scenario_from_dict, scenario_to_dict

        sc = materialize(ScenarioSpec(n_tasks=5, burstiness=3.0), seed=1)
        rebuilt = scenario_from_dict(scenario_to_dict(sc))
        assert rebuilt.spec.burstiness == 3.0
