"""Tests for scenario serialisation (JSON round-trips)."""

import json

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.scheduling.mct import MctHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.scheduler import TRMScheduler
from repro.workloads.consistency import Consistency
from repro.workloads.heterogeneity import HIHI
from repro.workloads.scenario import ScenarioSpec, materialize
from repro.workloads.serialization import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


@pytest.fixture
def scenario():
    spec = ScenarioSpec(
        n_tasks=12,
        n_machines=4,
        heterogeneity=HIHI,
        consistency=Consistency.CONSISTENT,
        target_load=2.0,
        otl_per_pair=False,
    )
    return materialize(spec, seed=21)


class TestRoundTrip:
    def test_spec_round_trips(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt.spec == scenario.spec
        assert rebuilt.seed == scenario.seed

    def test_grid_round_trips(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        g0, g1 = scenario.grid, rebuilt.grid
        assert g1.n_machines == g0.n_machines
        np.testing.assert_array_equal(g1.machine_rd, g0.machine_rd)
        np.testing.assert_array_equal(g1.client_cd, g0.client_cd)
        np.testing.assert_array_equal(g1.rd_required, g0.rd_required)
        np.testing.assert_array_equal(g1.cd_required, g0.cd_required)
        np.testing.assert_array_equal(
            g1.trust_table.levels, g0.trust_table.levels
        )
        assert g1.trust_table.ets.f_forces_max == g0.trust_table.ets.f_forces_max

    def test_eec_and_requests_round_trip(self, scenario):
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        np.testing.assert_allclose(rebuilt.eec, scenario.eec)
        assert len(rebuilt.requests) == len(scenario.requests)
        for a, b in zip(scenario.requests, rebuilt.requests):
            assert a.index == b.index
            assert a.arrival_time == b.arrival_time
            assert a.client.index == b.client.index
            assert a.task.activities.indices == b.task.activities.indices

    def test_schedule_identical_after_round_trip(self, scenario):
        """The acid test: scheduling the rebuilt scenario gives identical
        completion times."""
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        policy = TrustPolicy.aware()
        a = TRMScheduler(scenario.grid, scenario.eec, policy, MctHeuristic()).run(
            scenario.requests
        )
        b = TRMScheduler(rebuilt.grid, rebuilt.eec, policy, MctHeuristic()).run(
            rebuilt.requests
        )
        assert [r.completion_time for r in a.records] == [
            r.completion_time for r in b.records
        ]

    def test_file_round_trip(self, scenario, tmp_path):
        path = save_scenario(scenario, tmp_path / "scenario.json")
        rebuilt = load_scenario(path)
        np.testing.assert_allclose(rebuilt.eec, scenario.eec)
        # The file is plain JSON.
        data = json.loads(path.read_text())
        assert data["format_version"] == 1


class TestValidation:
    def test_unknown_version_rejected(self, scenario):
        data = scenario_to_dict(scenario)
        data["format_version"] = 99
        with pytest.raises(WorkloadError, match="version"):
            scenario_from_dict(data)

    def test_unknown_heterogeneity_rejected(self, scenario):
        data = scenario_to_dict(scenario)
        data["spec"]["heterogeneity"] = "MedMed"
        with pytest.raises(WorkloadError):
            scenario_from_dict(data)


class TestSerializationProperties:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    @pytest.mark.parametrize("otl_per_pair", [True, False])
    def test_round_trip_any_spec(self, seed, otl_per_pair):
        """Round-trips hold across spec variations, not just the fixture."""
        spec = ScenarioSpec(
            n_tasks=6,
            n_machines=3,
            target_load=2.0,
            otl_per_pair=otl_per_pair,
            ets_f_forces_max=not otl_per_pair,
        )
        sc = materialize(spec, seed=seed)
        rebuilt = scenario_from_dict(scenario_to_dict(sc))
        assert rebuilt.spec == sc.spec
        np.testing.assert_allclose(rebuilt.eec, sc.eec)
        np.testing.assert_array_equal(
            rebuilt.grid.trust_table.levels, sc.grid.trust_table.levels
        )
