"""Tests for request-stream assembly."""

import pytest

from repro.errors import WorkloadError
from repro.sim.arrivals import DeterministicProcess
from repro.workloads.requests import build_requests, generate_request_stream


class TestBuildRequests:
    def test_assembles_fields(self, small_grid):
        reqs = build_requests(
            small_grid,
            activity_sets=[(0,), (1, 2)],
            arrival_times=[1.0, 2.0],
            client_indices=[0, 1],
        )
        assert len(reqs) == 2
        assert reqs[0].client is small_grid.clients[0]
        assert reqs[1].task.activities.indices == (1, 2)
        assert reqs[1].arrival_time == 2.0
        assert reqs[0].client_domain_index == 0

    def test_length_mismatch_rejected(self, small_grid):
        with pytest.raises(WorkloadError):
            build_requests(small_grid, [(0,)], [1.0, 2.0], [0])

    def test_client_out_of_range(self, small_grid):
        with pytest.raises(WorkloadError):
            build_requests(small_grid, [(0,)], [1.0], [99])


class TestGenerateRequestStream:
    def test_generates_n_requests(self, small_grid, rng):
        reqs = generate_request_stream(
            small_grid, 25, DeterministicProcess(interval=1.0), rng
        )
        assert len(reqs) == 25
        assert [r.index for r in reqs] == list(range(25))

    def test_respects_toa_bounds(self, small_grid, rng):
        reqs = generate_request_stream(
            small_grid, 100, DeterministicProcess(interval=1.0), rng,
            min_toas=2, max_toas=3,
        )
        sizes = {len(r.task.activities) for r in reqs}
        assert sizes <= {2, 3}

    def test_clients_drawn_from_grid(self, small_grid, rng):
        reqs = generate_request_stream(
            small_grid, 200, DeterministicProcess(interval=1.0), rng
        )
        used = {r.client.index for r in reqs}
        assert used == {0, 1}

    def test_negative_count_rejected(self, small_grid, rng):
        with pytest.raises(WorkloadError):
            generate_request_stream(
                small_grid, -1, DeterministicProcess(interval=1.0), rng
            )
