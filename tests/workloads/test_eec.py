"""Tests for EEC generation, heterogeneity and consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.consistency import Consistency, apply_consistency
from repro.workloads.eec import cvb_matrix, matrix_heterogeneity, range_based_matrix
from repro.workloads.heterogeneity import BY_NAME, HIHI, HILO, LOHI, LOLO


class TestHeterogeneityClasses:
    def test_canonical_ranges(self):
        assert (LOLO.task_range, LOLO.machine_range) == (100.0, 10.0)
        assert (HIHI.task_range, HIHI.machine_range) == (3000.0, 1000.0)
        assert (LOHI.machine_range, HILO.machine_range) == (1000.0, 10.0)

    def test_lookup_by_name(self):
        assert BY_NAME["lolo"] is LOLO
        assert BY_NAME["hihi"] is HIHI

    def test_mean_cost(self):
        assert LOLO.mean_cost == pytest.approx(50.5 * 5.5)


class TestRangeBasedMatrix:
    def test_shape_and_positivity(self, rng):
        m = range_based_matrix(20, 5, LOLO, rng)
        assert m.shape == (20, 5)
        assert np.all(m > 0)

    def test_entries_within_product_range(self, rng):
        m = range_based_matrix(50, 8, LOLO, rng)
        assert m.max() <= LOLO.task_range * LOLO.machine_range
        assert m.min() >= 1.0

    def test_mean_matches_expectation(self, rng):
        m = range_based_matrix(2000, 10, LOLO, rng)
        assert m.mean() == pytest.approx(LOLO.mean_cost, rel=0.05)

    def test_consistent_rows_are_sorted(self, rng):
        m = range_based_matrix(30, 6, LOLO, rng, consistency=Consistency.CONSISTENT)
        assert np.all(np.diff(m, axis=1) >= 0)

    def test_high_task_heterogeneity_measured(self, rng):
        lo = range_based_matrix(300, 8, LOLO, rng)
        hi = range_based_matrix(300, 8, HILO, rng)
        assert matrix_heterogeneity(hi)[0] > matrix_heterogeneity(lo)[0] * 0.9

    def test_invalid_dims(self, rng):
        with pytest.raises(WorkloadError):
            range_based_matrix(0, 5, LOLO, rng)


class TestCvbMatrix:
    def test_shape_and_positivity(self, rng):
        m = cvb_matrix(30, 5, rng)
        assert m.shape == (30, 5)
        assert np.all(m > 0)

    def test_mean_calibrated_to_lolo(self, rng):
        m = cvb_matrix(3000, 8, rng)
        assert m.mean() == pytest.approx(278.0, rel=0.1)

    def test_cov_controls_spread(self, rng):
        tight = cvb_matrix(500, 8, rng, v_task=0.1, v_machine=0.1)
        wide = cvb_matrix(500, 8, rng, v_task=1.0, v_machine=1.0)
        assert wide.std() > tight.std()

    @pytest.mark.parametrize("kwargs", [
        {"mean_task": 0.0}, {"v_task": 0.0}, {"v_machine": -0.5},
    ])
    def test_invalid_parameters(self, rng, kwargs):
        with pytest.raises(WorkloadError):
            cvb_matrix(5, 5, rng, **kwargs)


class TestApplyConsistency:
    def test_inconsistent_is_copy(self, rng):
        m = range_based_matrix(5, 4, LOLO, rng)
        out = apply_consistency(m, Consistency.INCONSISTENT)
        np.testing.assert_array_equal(out, m)
        assert out is not m

    def test_consistent_preserves_multiset_per_row(self, rng):
        m = range_based_matrix(10, 6, LOLO, rng)
        out = apply_consistency(m, Consistency.CONSISTENT)
        np.testing.assert_allclose(np.sort(out, axis=1), np.sort(m, axis=1))

    def test_semi_consistent_sorts_even_columns(self, rng):
        m = range_based_matrix(10, 6, LOLO, rng)
        out = apply_consistency(m, Consistency.SEMI_CONSISTENT)
        even = out[:, ::2]
        assert np.all(np.diff(even, axis=1) >= 0)
        # Odd columns untouched.
        np.testing.assert_array_equal(out[:, 1::2], m[:, 1::2])

    def test_from_name(self):
        assert Consistency.from_name("Consistent") is Consistency.CONSISTENT
        assert Consistency.from_name(" SEMI-CONSISTENT ") is Consistency.SEMI_CONSISTENT
        with pytest.raises(WorkloadError):
            Consistency.from_name("random")

    def test_rejects_bad_matrices(self):
        with pytest.raises(WorkloadError):
            apply_consistency(np.ones(5), Consistency.CONSISTENT)
        with pytest.raises(WorkloadError):
            apply_consistency(np.zeros((2, 2)), Consistency.CONSISTENT)

    def test_heterogeneity_rejects_bad_input(self):
        with pytest.raises(WorkloadError):
            matrix_heterogeneity(np.ones(3))

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=8))
    def test_consistent_always_sorted(self, n, m):
        rng = np.random.default_rng(n * 100 + m)
        mat = range_based_matrix(n, m, LOLO, rng, consistency=Consistency.CONSISTENT)
        assert np.all(np.diff(mat, axis=1) >= 0)
