"""Tests for trust-attribute sampling."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.trustgen import (
    sample_activity_sets,
    sample_offered_table,
    sample_required_levels,
)


class TestSampleRequiredLevels:
    def test_range_is_paper_range(self, rng):
        levels = sample_required_levels(5000, rng)
        assert levels.min() >= 1 and levels.max() <= 6
        assert set(np.unique(levels)) == {1, 2, 3, 4, 5, 6}

    def test_custom_bounds(self, rng):
        levels = sample_required_levels(1000, rng, low=2, high=3)
        assert set(np.unique(levels)) <= {2, 3}

    def test_invalid_bounds(self, rng):
        with pytest.raises(WorkloadError):
            sample_required_levels(10, rng, low=0)
        with pytest.raises(WorkloadError):
            sample_required_levels(10, rng, low=4, high=2)
        with pytest.raises(WorkloadError):
            sample_required_levels(0, rng)


class TestSampleOfferedTable:
    def test_shape_and_range(self, rng):
        table = sample_offered_table(3, 4, 2, rng)
        assert table.shape == (3, 4, 2)
        assert table.min() >= 1 and table.max() <= 5

    def test_never_offers_f(self, rng):
        table = sample_offered_table(10, 10, 4, rng)
        assert table.max() <= 5

    def test_invalid_dims(self, rng):
        with pytest.raises(WorkloadError):
            sample_offered_table(0, 1, 1, rng)

    def test_invalid_bounds(self, rng):
        with pytest.raises(WorkloadError):
            sample_offered_table(1, 1, 1, rng, high=6)


class TestSampleActivitySets:
    def test_sizes_within_paper_bounds(self, rng):
        sets = sample_activity_sets(2000, 4, rng)
        sizes = {len(s) for s in sets}
        assert sizes == {1, 2, 3, 4}

    def test_no_duplicate_activities_within_set(self, rng):
        for s in sample_activity_sets(500, 4, rng):
            assert len(set(s)) == len(s)

    def test_indices_in_catalog(self, rng):
        for s in sample_activity_sets(200, 3, rng, max_toas=3):
            assert all(0 <= a < 3 for a in s)

    def test_cap_at_catalog_size(self, rng):
        sets = sample_activity_sets(100, 2, rng, max_toas=4)
        assert max(len(s) for s in sets) <= 2

    def test_zero_requests(self, rng):
        assert sample_activity_sets(0, 4, rng) == []

    def test_invalid_parameters(self, rng):
        with pytest.raises(WorkloadError):
            sample_activity_sets(-1, 4, rng)
        with pytest.raises(WorkloadError):
            sample_activity_sets(1, 0, rng)
        with pytest.raises(WorkloadError):
            sample_activity_sets(1, 4, rng, min_toas=3, max_toas=2)
