"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.activities import ActivityCatalog
from repro.grid.topology import Grid, GridBuilder
from repro.workloads.scenario import ScenarioSpec, materialize


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_grid() -> Grid:
    """A hand-built grid: 2 RDs (3 machines), 2 CDs (2 clients), 3 ToAs."""
    catalog = ActivityCatalog(["execute", "store", "print"])
    builder = GridBuilder(catalog)
    gd_a = builder.grid_domain("site-a")
    gd_b = builder.grid_domain("site-b")
    rd0 = builder.resource_domain(gd_a, required_level="B")
    rd1 = builder.resource_domain(gd_b, required_level="D")
    builder.machine(rd0)
    builder.machine(rd0)
    builder.machine(rd1)
    cd0 = builder.client_domain(gd_a, required_level="C")
    cd1 = builder.client_domain(gd_b, required_level="A")
    builder.client(cd0)
    builder.client(cd1)
    return builder.build()


@pytest.fixture
def small_scenario():
    """A small materialised scenario (12 tasks, 3 machines)."""
    spec = ScenarioSpec(n_tasks=12, n_machines=3, target_load=2.0)
    return materialize(spec, seed=7)
