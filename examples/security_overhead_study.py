#!/usr/bin/env python
"""The Section-5.1 security overhead study, end to end.

Reproduces the measurements that motivate trust-aware scheduling:

1. rcp vs scp transfer times on 100 Mbps and 1000 Mbps networks (the
   paper's Tables 2-3), plus what-if rows for faster ciphers and a modern
   CPU — showing *why* the overhead exists (the cipher pipeline stage).
2. MiSFIT / SASI x86SFI sandboxing overheads for the three benchmark
   applications, from both the analytic model and sampled instruction
   streams.
3. The supplement ladder: stacking the measured mechanisms per missing
   trust level and fitting the per-level weight — grounding the paper's
   "arbitrarily chosen" 15 %/level.

Run:
    python examples/security_overhead_study.py
"""

import numpy as np

from repro.metrics import Table, format_percent
from repro.security import (
    AES128_SHA1,
    BENCHMARK_APPS,
    DEFAULT_LADDER,
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    MISFIT,
    SASI_X86SFI,
    SCP,
    RCP,
    HostCpu,
    TransferEndpoint,
    TransferProtocol,
    calibrate_weight,
    linear_supplement_fraction,
    predicted_overhead,
    simulate_sandboxed_run,
    simulate_transfer,
    transfer_overhead,
)

FILE_SIZES = (1, 10, 100, 500, 1000)


def transfer_study() -> None:
    print("== Secure vs regular transmission (Tables 2-3) ==")
    for link in (FAST_ETHERNET, GIGABIT_ETHERNET):
        table = Table(
            headers=["File/MB", "rcp (s)", "scp (s)", "overhead"],
            title=f"{link.name} network:",
        )
        for size in FILE_SIZES:
            table.add_row(
                size,
                f"{simulate_transfer(size, RCP, link):.2f}",
                f"{simulate_transfer(size, SCP, link):.2f}",
                format_percent(transfer_overhead(size, link)),
            )
        print(table.render())
        print()

    print("What if the cipher were not the bottleneck?")
    scp_aes = TransferProtocol("scp-aes128", handshake_s=0.5, cipher=AES128_SHA1)
    modern = TransferEndpoint(cpu=HostCpu("3 GHz", clock_mhz=3000.0), disk_mbs=80.0)
    for label, protocol, endpoint in (
        ("PIII-866 + 3DES (paper)", SCP, TransferEndpoint()),
        ("PIII-866 + AES-128", scp_aes, TransferEndpoint()),
        ("3 GHz + AES-128", scp_aes, modern),
    ):
        t = simulate_transfer(1000, protocol, GIGABIT_ETHERNET, endpoint)
        r = simulate_transfer(1000, RCP, GIGABIT_ETHERNET, endpoint)
        print(f"  {label:<26} scp 1000MB = {t:7.2f}s  overhead {format_percent(1 - r / t)}")
    print()


def sandbox_study() -> None:
    print("== SFI sandboxing overheads (Section 5.1) ==")
    rng = np.random.default_rng(0)
    table = Table(
        headers=["Application", "MiSFIT model", "MiSFIT sampled", "SASI model", "SASI sampled"]
    )
    for app in BENCHMARK_APPS:
        table.add_row(
            app.name,
            format_percent(predicted_overhead(app, MISFIT), 0),
            format_percent(simulate_sandboxed_run(app, MISFIT, rng), 0),
            format_percent(predicted_overhead(app, SASI_X86SFI), 0),
            format_percent(simulate_sandboxed_run(app, SASI_X86SFI, rng), 0),
        )
    print(table.render())
    print()


def ladder_study() -> None:
    print("== Supplement ladder: grounding the 15%/level weight ==")
    table = Table(headers=["TC", "ladder overhead", "linear (15%/level)"])
    for tc in range(7):
        table.add_row(
            tc,
            format_percent(DEFAULT_LADDER.overhead(tc)),
            format_percent(linear_supplement_fraction(tc)),
        )
    print(table.render())
    weight = calibrate_weight(DEFAULT_LADDER)
    print(
        f"least-squares per-level weight of the mechanism ladder: "
        f"{weight:.1f}% (the paper chose 15%)\n"
    )


if __name__ == "__main__":
    transfer_study()
    sandbox_study()
    ladder_study()
