#!/usr/bin/env python
"""Profiling a scheduling run: metrics, traces and the run manifest.

Wraps one Min-min run in a :class:`ProfiledRun`, which turns on the
metrics registry (counters, gauges, streaming histograms) and the event
tracer, then:

* prints the run report — every metric with count/mean/p50/p95/p99;
* writes the artifact bundle — ``manifest.json`` (config hash, seed,
  wall time, metric snapshot), ``trace.jsonl`` (one event per line) and
  ``trace.chrome.json`` (open it in ``chrome://tracing`` / Perfetto to
  see per-machine assignment tracks).

The same instrumentation left at its defaults costs nothing: disabled
registries hand out shared no-op instruments, and the invariant tests pin
that observed and unobserved runs produce bit-identical results.

Run:
    python examples/profiling.py [seed] [output_dir]
"""

import sys
import tempfile

from repro import (
    MetricsRegistry,
    ProfiledRun,
    ScenarioSpec,
    TRMScheduler,
    TrustPolicy,
    make_heuristic,
    materialize,
)


def main(seed: int = 1, output_dir: str | None = None) -> None:
    # 1. A Table-6-style scenario: Min-min in batch mode, moderately loaded.
    spec = ScenarioSpec(n_tasks=60, n_machines=5, target_load=3.0)
    scenario = materialize(spec, seed=seed)

    # 2. ProfiledRun bundles an *enabled* registry + tracer + wall clock.
    #    Hand its instruments to the scheduler; everything else is as usual.
    with ProfiledRun(name="minmin-demo", config=spec, seed=seed) as prof:
        result = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            make_heuristic("min-min"),
            batch_interval=300.0,
            metrics=prof.metrics,
            tracer=prof.tracer,
        ).run(scenario.requests)
        prof.record_result(result)

    # 3. The report: one row per metric, quantiles from streaming sketches.
    print(prof.report())

    # 4. Pull a single number straight off the registry: the p95 mapping
    #    latency of the Min-min planner, measured per batch.
    latency = prof.metrics.histogram("sched.map_latency_s.min-min.kernel=reference")
    print(
        f"min-min mapping latency: p50 {latency.p50 * 1e6:.0f} us, "
        f"p95 {latency.p95 * 1e6:.0f} us over {latency.count} batches"
    )

    # 5. The artifact bundle — manifest + JSONL trace + Chrome trace.
    target = output_dir or tempfile.mkdtemp(prefix="repro-profile-")
    paths = prof.write_artifacts(target)
    print("artifacts:")
    for kind in sorted(paths):
        print(f"  {kind:>12}: {paths[kind]}")

    # A disabled registry is the default and is free: same class, no-op
    # instruments, and (pinned by tests/obs) bit-identical results.
    assert MetricsRegistry.disabled().snapshot() == {}


if __name__ == "__main__":
    main(
        int(sys.argv[1]) if len(sys.argv) > 1 else 1,
        sys.argv[2] if len(sys.argv) > 2 else None,
    )
