#!/usr/bin/env python
"""Fault tolerance: crashing tasks, failing machines, retries, and the
trust loop that learns to route around unreliable domains.

Three stages:

1. **A single faulty run.**  A scheduler with a :class:`FaultInjector`
   sees task crashes and machine downtimes; failed attempts are retried
   (excluding the machine that failed them) up to the retry budget, then
   dropped.  Every request settles exactly once.
2. **Recovery policies.**  The same fault stream under "drop immediately"
   vs "three attempts with backoff" — retries trade extra wasted work for
   far fewer lost requests.
3. **The closed loop.**  Failures feed the Figure-1 agents as maximally
   unsatisfactory transactions, so over a few rounds trust-aware MCT
   learns to avoid the flaky domain while the trust-unaware baseline
   keeps crashing on it.

Run:
    python examples/fault_tolerance.py [seed]
"""

import sys

from repro import ScenarioSpec, TRMScheduler, TrustPolicy, materialize
from repro.experiments import run_fault_recovery
from repro.faults import (
    FaultInjector,
    FaultModel,
    MachineFailureModel,
    RetryPolicy,
    TaskFailureModel,
)
from repro.metrics import Table, format_percent
from repro.scheduling import MctHeuristic


def single_run(seed: int) -> None:
    scenario = materialize(ScenarioSpec(n_tasks=40), seed=seed)
    model = FaultModel(
        tasks=TaskFailureModel(default_crash_prob=0.25, weibull_shape=2.0),
        machines=MachineFailureModel(mtbf=400.0, mttr=40.0),
    )
    result = TRMScheduler(
        scenario.grid,
        scenario.eec,
        TrustPolicy.aware(),
        MctHeuristic(),
        faults=FaultInjector(model, rng=seed),
        retry=RetryPolicy(max_attempts=3, backoff_base=2.0),
    ).run(scenario.requests)
    s = result.summary()
    print("One faulty run (MCT, trust-aware):")
    print(
        f"  submitted {s['submitted']}: {s['completed']} completed, "
        f"{s['dropped']} dropped, {s['rejected']} rejected "
        f"({s['failures']} failed attempts)"
    )
    print(
        f"  goodput {s['goodput']:.5f}  wasted work "
        f"{format_percent(s['wasted_work_fraction'])}  effective makespan "
        f"{s['effective_makespan']:.0f}"
    )
    retried = [r for r in result.records if r.attempt > 1]
    print(f"  {len(retried)} requests needed more than one attempt\n")


def compare_retry_policies(seed: int) -> None:
    scenario = materialize(ScenarioSpec(n_tasks=40), seed=seed)
    model = FaultModel(
        tasks=TaskFailureModel(default_crash_prob=0.3, weibull_shape=2.0)
    )
    table = Table(
        headers=["Retry policy", "Completed", "Dropped", "Wasted work"],
        title="Recovery policies under the same fault stream:",
    )
    for label, retry in (
        ("drop immediately", RetryPolicy.drop()),
        ("3 attempts + backoff", RetryPolicy(max_attempts=3, backoff_base=2.0)),
    ):
        result = TRMScheduler(
            scenario.grid,
            scenario.eec,
            TrustPolicy.aware(),
            MctHeuristic(),
            faults=FaultInjector(model, rng=seed),
            retry=retry,
        ).run(scenario.requests)
        table.add_row(
            label,
            result.n_completed,
            result.n_dropped,
            format_percent(result.wasted_work_fraction),
        )
    print(table.render())
    print()


def closed_loop(seed: int) -> None:
    study = run_fault_recovery(seed=seed, rounds=6)
    print("Closed loop: failures erode the flaky domain's trust.")
    for o in (study.unaware, study.aware):
        print(
            f"  {o.label:>14}: goodput {o.goodput:.5f}  wasted work "
            f"{format_percent(o.wasted_work_fraction)}  "
            f"failures {o.failures}"
        )
    print(
        f"  trust-aware goodput gain {format_percent(study.goodput_gain)}, "
        f"wasted-work reduction {study.waste_reduction:+.1%}"
    )


def main(seed: int) -> None:
    single_run(seed)
    compare_retry_policies(seed)
    closed_loop(seed)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
