#!/usr/bin/env python
"""Compare the full [10] heuristic family, with and without trust.

The paper modifies three heuristics (MCT, Min-min, Sufferage); this example
runs all nine registered heuristics over the same replicated workloads,
across both consistency classes, and prints a league table: absolute
average completion time, trust-aware improvement, and utilisation.

Run:
    python examples/heuristic_comparison.py [replications]
"""

import sys

from repro.experiments import (
    PAPER_BATCH_INTERVAL,
    paper_policies,
    paper_spec,
    run_paired_cell,
)
from repro.metrics import Table, format_percent, format_seconds
from repro.scheduling import heuristic_names, is_batch
from repro.workloads import Consistency


def main(replications: int = 8) -> None:
    aware, unaware = paper_policies()
    for consistency in (Consistency.INCONSISTENT, Consistency.CONSISTENT):
        spec = paper_spec(50, consistency)
        table = Table(
            headers=[
                "Heuristic",
                "Mode",
                "Unaware CT",
                "Aware CT",
                "Improvement",
                "Utilization",
            ],
            title=f"{consistency.value} LoLo, 50 tasks, {replications} replications:",
        )
        cells = {}
        for name in heuristic_names():
            cell = run_paired_cell(
                spec,
                name,
                aware,
                unaware,
                replications=replications,
                batch_interval=PAPER_BATCH_INTERVAL,
            )
            cells[name] = cell
            table.add_row(
                name,
                "batch" if is_batch(name) else "online",
                format_seconds(cell.unaware_completion.mean),
                format_seconds(cell.aware_completion.mean),
                format_percent(cell.mean_improvement),
                format_percent(cell.aware_utilization.mean),
            )
        print(table.render())
        best = min(cells, key=lambda n: cells[n].aware_completion.mean)
        print(f"best trust-aware heuristic: {best}\n")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
