#!/usr/bin/env python
"""Trust evolution: from cold start to a learned trust-level table.

The paper defers "managing and evolving trust" to future work; this example
runs that loop end to end with the Figure-1 architecture:

1. Build a Grid of two institutions plus a flaky newcomer.  The shared
   trust-level table starts cold (everyone offers the minimum level A).
2. Drive epochs of transactions.  The domains' monitoring agents observe
   each outcome, evolve their internal Section-2 trust records (EMA over
   satisfaction, recommender scoring), and publish quantised levels into
   the shared table when the evidence is significant.
3. Between epochs, schedule a fresh batch of requests with the trust-aware
   MCT heuristic and watch the average completion time fall as the RMS
   learns who can be trusted — and watch the newcomer's flaky behaviour
   keep its offered levels (and therefore its share of work) low.

Run:
    python examples/trust_evolution.py
"""

import numpy as np

from repro.core import MinEvidencePolicy
from repro.grid import ActivityCatalog, AgentFleet, GridBuilder
from repro.metrics import format_seconds
from repro.scheduling import MctHeuristic, TRMScheduler, TrustPolicy
from repro.sim import RngFactory
from repro.workloads import LOLO, generate_request_stream, range_based_matrix
from repro.sim.arrivals import PoissonProcess

EPOCHS = 8
TRANSACTIONS_PER_EPOCH = 30
REQUESTS_PER_EPOCH = 40

#: How well each resource domain actually behaves (ground truth the agents
#: must discover): the two institutions are reliable, the newcomer is flaky.
TRUE_BEHAVIOUR = {0: 0.92, 1: 0.85, 2: 0.22}


def build_grid():
    catalog = ActivityCatalog(["execute", "store"])
    builder = GridBuilder(catalog)
    rds = []
    for j, name in enumerate(["uni-west", "uni-east", "newcomer"]):
        gd = builder.grid_domain(name)
        rds.append(builder.resource_domain(gd, required_level="B"))
        builder.machine(rds[-1])
        if j < 2:  # the institutions contribute a second machine each
            builder.machine(rds[-1])
    gd_clients = builder.grid_domain("consumers")
    cd = builder.client_domain(gd_clients, required_level="D")
    for _ in range(3):
        builder.client(cd)
    return builder.build()


def main() -> None:
    grid = build_grid()
    rng = RngFactory(seed=7)
    behaviour_rng = rng.stream("behaviour")
    workload_rng = rng.stream("workload")

    # Fig. 1: one agent per domain, publishing only on significant evidence.
    fleet = AgentFleet.for_table(
        grid.trust_table, policy=MinEvidencePolicy(min_transactions=5), smoothing=0.25
    )

    eec = range_based_matrix(REQUESTS_PER_EPOCH, grid.n_machines, LOLO, rng.stream("eec"))
    policy = TrustPolicy.aware(unaware_fraction=0.9)

    print(f"{'epoch':>5} | {'avg completion':>14} | {'mean TC':>7} | offered levels per RD")
    now = 0.0
    for epoch in range(EPOCHS):
        # -- transactions observed by the CD agents -----------------------
        for _ in range(TRANSACTIONS_PER_EPOCH):
            rd_index = int(behaviour_rng.integers(0, len(grid.resource_domains)))
            activity = grid.catalog.by_index(
                int(behaviour_rng.integers(0, len(grid.catalog)))
            )
            quality = float(
                np.clip(
                    behaviour_rng.normal(TRUE_BEHAVIOUR[rd_index], 0.1), 0.0, 1.0
                )
            )
            fleet.cd_agents[0].observe_transaction(rd_index, activity, quality, now)
            now += 1.0

        # -- schedule an epoch's workload with the current table ----------
        arrivals = PoissonProcess(rate=0.05, rng=workload_rng)
        requests = generate_request_stream(
            grid, REQUESTS_PER_EPOCH, arrivals, workload_rng, max_toas=2
        )
        result = TRMScheduler(grid, eec, policy, MctHeuristic()).run(requests)
        mean_tc = float(np.mean([r.trust_cost for r in result.records]))
        levels = [
            grid.trust_table.get(0, rd.index, 0).name
            for rd in grid.resource_domains
        ]
        print(
            f"{epoch:>5} | {format_seconds(result.average_completion_time):>14}"
            f" | {mean_tc:>7.2f} | {levels}"
        )

    # The newcomer's flakiness must be reflected in the learned table.
    newcomer_level = grid.trust_table.get(0, 2, 0)
    institution_level = grid.trust_table.get(0, 0, 0)
    print(
        f"\nlearned: {grid.resource_domains[0].grid_domain.name} offers "
        f"{institution_level.name}, newcomer offers {newcomer_level.name} "
        f"({fleet.total_published()} table updates published)"
    )
    assert institution_level > newcomer_level


if __name__ == "__main__":
    main()
