#!/usr/bin/env python
"""Extending the library: write, register and evaluate a custom heuristic.

A downstream-user story: implement a new trust-aware mapping heuristic —
*trust-first MCT*, which only considers the machines with the lowest trust
cost for the request and picks the earliest completion among them — plug it
into the registry, and run it through the exact experiment harness used for
the paper tables, significance test included.

Run:
    python examples/custom_heuristic.py
"""

import numpy as np

from repro.experiments import paper_policies, paper_spec, run_paired_cell
from repro.metrics import Table, format_percent, format_seconds
from repro.scheduling import ImmediateHeuristic, register_heuristic
from repro.scheduling.base import check_avail
from repro.workloads import Consistency


class TrustFirstMct(ImmediateHeuristic):
    """Earliest completion cost among the minimum-trust-cost machines.

    Where plain MCT trades trust against execution speed implicitly
    (through the blended ECC), this heuristic makes trust lexicographically
    dominant: first restrict to the machines whose TC equals the request's
    minimum, then apply MCT within that subset.
    """

    name = "trust-first-mct"

    def choose(self, request, costs, avail):
        avail = check_avail(avail, costs.grid.n_machines)
        tc = costs.trust_cost_row(request)
        candidates = np.flatnonzero(tc == tc.min())
        completion = avail[candidates] + costs.mapping_ecc_row(request)[candidates]
        return int(candidates[int(np.argmin(completion))])


def main() -> None:
    register_heuristic("trust-first-mct", TrustFirstMct)

    aware, unaware = paper_policies()
    spec = paper_spec(50, Consistency.INCONSISTENT)

    table = Table(
        headers=["Heuristic", "Unaware CT", "Aware CT", "Improvement", "p-value"],
        title="Custom heuristic vs the paper's MCT (15 replications):",
    )
    for name in ("mct", "trust-first-mct"):
        cell = run_paired_cell(
            spec, name, aware, unaware, replications=15, batch_interval=None
        )
        test = cell.significance()
        table.add_row(
            name,
            format_seconds(cell.unaware_completion.mean),
            format_seconds(cell.aware_completion.mean),
            format_percent(cell.mean_improvement),
            f"{test.p_value:.2g}",
        )
    print(table.render())
    print(
        "\ntrust-first mapping maximises trust affinity at the price of load"
        "\nbalance — compare the aware completion times to see the trade-off."
    )


if __name__ == "__main__":
    main()
