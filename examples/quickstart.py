#!/usr/bin/env python
"""Quickstart: trust-aware vs trust-unaware scheduling on one Grid scenario.

Builds the paper's Section-5.3 setup (5 machines, Poisson arrivals,
inconsistent LoLo heterogeneity), runs the same workload through the MCT
heuristic with and without trust awareness, and prints the comparison the
paper's Table 4 reports.

Run:
    python examples/quickstart.py [seed]
"""

import sys

from repro import ScenarioSpec, TRMScheduler, TrustPolicy, materialize
from repro.experiments import PAPER_UNAWARE_FRACTION
from repro.metrics import PairedComparison, format_percent, format_seconds
from repro.scheduling import MctHeuristic


def main(seed: int = 1) -> None:
    # 1. Describe the experiment: 50 requests against 5 machines, heavily
    #    loaded so the machines stay busy (the paper's >90% regime).
    spec = ScenarioSpec(n_tasks=50, n_machines=5, target_load=4.5)

    # 2. Materialise it: one seed fixes the grid topology, the trust-level
    #    table, the EEC matrix and the Poisson arrival stream.
    scenario = materialize(spec, seed=seed)
    grid = scenario.grid
    print(
        f"scenario: {len(grid.client_domains)} client domain(s), "
        f"{len(grid.resource_domains)} resource domain(s), "
        f"{grid.n_machines} machines, {len(scenario.requests)} requests"
    )

    # 3. Run the identical workload under both policies.
    results = {}
    for policy in (
        TrustPolicy.aware(unaware_fraction=PAPER_UNAWARE_FRACTION),
        TrustPolicy.unaware(unaware_fraction=PAPER_UNAWARE_FRACTION),
    ):
        scheduler = TRMScheduler(grid, scenario.eec, policy, MctHeuristic())
        results[policy.label] = scheduler.run(scenario.requests)

    # 4. Compare.
    pair = PairedComparison(
        aware=results["trust-aware"], unaware=results["trust-unaware"]
    )
    for label, result in results.items():
        print(
            f"{label:>14}: avg completion {format_seconds(result.average_completion_time):>10}"
            f"   makespan {format_seconds(result.makespan):>10}"
            f"   utilization {format_percent(result.machine_utilization)}"
            f"   security share {format_percent(result.security_overhead_share)}"
        )
    print(f"{'improvement':>14}: {format_percent(pair.completion_improvement)}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
