#!/usr/bin/env python
"""Hard trust constraints: "my job must not run on untrusted resources".

The paper's introduction motivates trust-aware scheduling with consumers
who refuse untrusted resources outright — a *hard* constraint the
cost-based model softens.  This example sweeps the hard trust-cost bound
under both infeasibility policies:

* ``REJECT`` (strict admission control): tighter bounds refuse more
  requests but every admitted one honours the bound;
* ``RELAX`` (best effort): nothing is refused; requests with no feasible
  machine fall back to the unconstrained machine set.

It also prints the per-request :class:`SecurityPlan` for the least-trusted
admitted assignment — the concrete mechanisms behind the scalar cost.

Run:
    python examples/admission_control.py
"""

import numpy as np

from repro.metrics import Table, format_percent, format_seconds
from repro.scheduling import (
    InfeasiblePolicy,
    MctHeuristic,
    TrustConstraint,
    TRMScheduler,
    TrustPolicy,
)
from repro.security import plan_supplement
from repro.workloads import ScenarioSpec, materialize


def sweep(policy_kind: InfeasiblePolicy) -> None:
    spec = ScenarioSpec(n_tasks=60, target_load=4.5, rd_range=(3, 4))
    table = Table(
        headers=["Max TC", "Rejected", "Mean TC", "Avg completion"],
        title=f"infeasible policy = {policy_kind.value}:",
    )
    for threshold in (6, 2, 1, 0):
        rejections, tcs, cts = [], [], []
        for seed in range(8):
            scenario = materialize(spec, seed=seed)
            result = TRMScheduler(
                scenario.grid,
                scenario.eec,
                TrustPolicy.aware(unaware_fraction=0.9),
                MctHeuristic(),
                constraint=TrustConstraint(
                    max_trust_cost=threshold, infeasible=policy_kind
                ),
            ).run(scenario.requests)
            rejections.append(result.rejection_rate)
            if result.records:
                tcs.append(float(np.mean([r.trust_cost for r in result.records])))
                cts.append(result.average_completion_time)
        table.add_row(
            threshold,
            format_percent(float(np.mean(rejections))),
            f"{np.mean(tcs):.2f}",
            format_seconds(float(np.mean(cts))),
        )
    print(table.render())
    print()


def show_security_plan() -> None:
    scenario = materialize(ScenarioSpec(n_tasks=40, target_load=4.5), seed=5)
    result = TRMScheduler(
        scenario.grid,
        scenario.eec,
        TrustPolicy.aware(unaware_fraction=0.9),
        MctHeuristic(),
    ).run(scenario.requests)
    worst = max(result.records, key=lambda r: r.trust_cost)
    request = scenario.requests[worst.request_index]
    print(
        f"least-trusted admitted assignment: request {worst.request_index} "
        f"on machine {worst.machine_index}"
    )
    print(plan_supplement(request.task.activities, int(worst.trust_cost)).describe())


if __name__ == "__main__":
    sweep(InfeasiblePolicy.REJECT)
    sweep(InfeasiblePolicy.RELAX)
    show_security_plan()
