"""Ablations of the reproduction-critical design choices (DESIGN.md §2).

Four knobs the paper under-specifies, each swept with everything else at
the frozen configuration:

* security accounting (flat blanket vs pair-realised);
* the blanket-security surcharge (the paper's formula says 50 %, its
  results imply the worst-case-supplement 90 %);
* OTL granularity (composite per-pair vs per-activity min-composition);
* Table 1's F-row override in sampled trust costs;
* the 15 %/level trust-cost weight.
"""

from conftest import save_and_echo

from repro.analysis.ablation import (
    ablate_accounting,
    ablate_f_override,
    ablate_otl_granularity,
    ablate_tc_weight,
    ablate_unaware_fraction,
)
from repro.metrics.report import Table

REPS = 10


def _rows(points):
    return [(str(p.value), f"{p.improvement:+.1%}") for p in points]


def test_ablations(benchmark, results_dir):
    def run_all():
        return {
            "accounting": ablate_accounting(replications=REPS),
            "unaware_fraction": ablate_unaware_fraction(
                (0.5, 0.75, 0.9), replications=REPS
            ),
            "otl_granularity": ablate_otl_granularity(replications=REPS),
            "f_override": ablate_f_override(replications=REPS),
            "tc_weight": ablate_tc_weight((5.0, 15.0, 25.0), replications=REPS),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        headers=["Knob", "Value", "MCT improvement"],
        title="Ablations of the reproduction-critical choices (10 reps each).",
    )
    for knob, points in results.items():
        for value, improvement in _rows(points):
            table.add_row(knob, value, improvement)
    save_and_echo(results_dir, "ablations", table.render())

    # The calibration story of DESIGN.md, asserted:
    fracs = {p.value: p.improvement for p in results["unaware_fraction"]}
    assert fracs[0.9] > fracs[0.75] > fracs[0.5]  # surcharge drives the gap
    assert fracs[0.5] < 0.28  # the literal 50% reading stays well below ~37%
    f_override = {p.value: p.improvement for p in results["f_override"]}
    assert f_override[False] > f_override[True]  # the F row suppresses gains
