"""Extension bench — trust-aware gains across the full [10] heuristic family.

The paper modifies three of the nine heuristics of [10]; this bench runs
the whole family (MCT, MET, OLB, KPB, SA, Min-min, Max-min, Sufferage,
Duplex) under the frozen configuration and reports each one's trust gain —
the wider comparison the paper's framework implies.
"""

from conftest import save_and_echo

from repro.experiments.config import (
    PAPER_BATCH_INTERVAL,
    paper_policies,
    paper_spec,
)
from repro.experiments.runner import run_paired_cell
from repro.metrics.report import Table, format_percent
from repro.scheduling.registry import heuristic_names
from repro.workloads.consistency import Consistency

REPS = 10


def test_heuristic_families(benchmark, results_dir):
    aware, unaware = paper_policies()
    spec = paper_spec(50, Consistency.INCONSISTENT)

    def run_all():
        return {
            name: run_paired_cell(
                spec,
                name,
                aware,
                unaware,
                replications=REPS,
                batch_interval=PAPER_BATCH_INTERVAL,
            )
            for name in heuristic_names()
        }

    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        headers=["Heuristic", "Unaware CT", "Aware CT", "Improvement"],
        title="Trust gains across the full [10] heuristic family (50 tasks).",
    )
    for name, cell in sorted(cells.items()):
        table.add_row(
            name,
            f"{cell.unaware_completion.mean:,.0f}",
            f"{cell.aware_completion.mean:,.0f}",
            format_percent(cell.mean_improvement),
        )
    save_and_echo(results_dir, "heuristic_families", table.render())

    # Every heuristic benefits from trust awareness under the frozen config.
    for name, cell in cells.items():
        assert cell.mean_improvement > 0.0, f"{name} did not benefit"
    # The paper's ordering: the strong batch packer gains least because its
    # unaware baseline is already good.
    assert cells["min-min"].mean_improvement < cells["mct"].mean_improvement
    # OLB's unaware baseline (cost-blind) is the worst absolute performer.
    assert cells["olb"].unaware_completion.mean > cells["mct"].unaware_completion.mean
