"""Section 5.2 — the makespan-dominance theorem, empirically.

Regenerates the dominance evidence for all three paper heuristics under the
headline accounting (strong positive margins) and documents the
reproduction finding that the multi-task claim is a tendency, not a
theorem, on the proof's own cost surface.
"""

from conftest import save_and_echo

from repro.analysis.theorem import check_dominance
from repro.metrics.report import Table
from repro.scheduling.policy import SecurityAccounting


def test_theorem_dominance(benchmark, results_dir):
    def run_all():
        reports = {}
        for heuristic in ("mct", "min-min", "sufferage"):
            for accounting in (
                SecurityAccounting.CONSERVATIVE_FLAT,
                SecurityAccounting.PAIR_REALIZED,
            ):
                reports[(heuristic, accounting.value)] = check_dominance(
                    heuristic, trials=20, n_tasks=40, accounting=accounting
                )
        return reports

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        headers=["Heuristic", "Accounting", "Violations", "Mean margin"],
        title="Makespan dominance of the trust-aware scheduler (20 trials each).",
    )
    for (heuristic, accounting), report in sorted(reports.items()):
        table.add_row(
            heuristic,
            accounting,
            f"{report.violations}/{report.trials}",
            f"{report.mean_margin:+.2%}",
        )
    save_and_echo(results_dir, "theorem_dominance", table.render())

    for heuristic in ("mct", "min-min", "sufferage"):
        flat = reports[(heuristic, "conservative-flat")]
        # Under the headline accounting the aware scheduler wins clearly.
        assert flat.mean_margin > 0.05
        assert flat.violations <= flat.trials // 3
