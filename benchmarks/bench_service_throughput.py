"""Service-plane bench — ingestion throughput trajectory (``BENCH_service.json``).

Replays growing Table-6-shaped request streams through the always-on
service (``repro.service``) and records, per size and admission arm:

* sustained ingestion throughput (submitted requests per wall second),
* the shed fraction under bounded admission,
* the p99 admission decision latency (the ``svc.decision_latency_s``
  timer around queue insertion), and
* the service's wall-time overhead over the batch ``TRMScheduler`` on the
  identical workload — the service drives the same engine, so anything
  beyond event-plumbing overhead is a regression.

Two entry points, mirroring ``bench_sched_kernel.py``:

* ``test_service_throughput_smoke`` — CI guard: smallest size only,
  validates the payload schema in-memory and fails if the unlimited-arm
  service is more than 1.5x slower than the batch scheduler.
* ``test_service_throughput_full_sweep`` — the real sweep; opt-in via
  ``BENCH_SERVICE_FULL=1``.  Writes ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.config import (
    PAPER_BATCH_INTERVAL,
    paper_policies,
    paper_spec,
)
from repro.obs.metrics import MetricsRegistry
from repro.scheduling import TRMScheduler, make_heuristic
from repro.service import AdmissionPolicy, ServiceConfig, replay_scenario
from repro.workloads.consistency import Consistency
from repro.workloads.scenario import materialize

SCHEMA = "repro.bench.service/v1"
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"
SIZES = (100, 400, 1600)
SEED = 0
REPEATS = 3
#: CI guard: the unlimited-admission service must not fall behind the
#: batch scheduler by more than this factor at the smoke size.
SMOKE_SLOWDOWN_LIMIT = 1.5

#: The bounded arm's admission policy, scaled per size in :func:`arms`.
ARMS = ("unlimited", "bounded")


def build_case(n_tasks: int):
    spec = paper_spec(n_tasks, Consistency.INCONSISTENT)
    return materialize(spec, seed=SEED)


def arm_config(arm: str, n_tasks: int) -> ServiceConfig:
    if arm == "unlimited":
        return ServiceConfig()
    return ServiceConfig(
        admission=AdmissionPolicy(queue_capacity=max(8, n_tasks // 4)),
        backpressure_high=max(16, n_tasks // 2),
    )


def time_batch(scenario) -> float:
    """Best-of-``REPEATS`` wall time of the batch reference run."""
    aware, _ = paper_policies()
    best = float("inf")
    for _ in range(REPEATS):
        scheduler = TRMScheduler(
            scenario.grid,
            scenario.eec,
            aware,
            make_heuristic("min-min"),
            batch_interval=PAPER_BATCH_INTERVAL,
        )
        start = time.perf_counter()
        scheduler.run(scenario.requests)
        best = min(best, time.perf_counter() - start)
    return best


def time_service(scenario, config: ServiceConfig):
    """Best-of-``REPEATS`` service replay; returns (wall_s, result, p99).

    Wall time is measured unmetered so the overhead ratio against the
    (equally unmetered) batch run isolates the service plane itself; one
    extra metered replay supplies the decision-latency histogram.
    """
    aware, _ = paper_policies()
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        run = replay_scenario(scenario, "min-min", aware, config=config)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            result = run
    metrics = MetricsRegistry()
    replay_scenario(scenario, "min-min", aware, config=config, metrics=metrics)
    p99 = metrics.histogram("svc.decision_latency_s").p99
    return best, result, p99


def run_sweep(sizes, arms=ARMS) -> dict:
    """Replay every size under every admission arm; returns the payload."""
    results = []
    for n_tasks in sizes:
        scenario = build_case(n_tasks)
        batch_s = time_batch(scenario)
        for arm in arms:
            wall_s, result, p99 = time_service(
                scenario, arm_config(arm, n_tasks)
            )
            results.append(
                {
                    "arm": arm,
                    "n_tasks": n_tasks,
                    "batch_s": batch_s,
                    "service_s": wall_s,
                    "overhead": wall_s / batch_s,
                    "throughput_rps": result.submitted / wall_s,
                    "shed_fraction": result.shed_total / result.submitted,
                    "decision_p99_s": p99,
                    "windows": result.windows,
                }
            )
    return {
        "schema": SCHEMA,
        "workload": {
            "shape": "table6",
            "consistency": "inconsistent",
            "heuristic": "min-min",
            "seed": SEED,
        },
        "repeats": REPEATS,
        "results": results,
    }


def validate_payload(payload: dict) -> None:
    """Schema check shared by the CI smoke test and artifact consumers."""
    assert payload["schema"] == SCHEMA
    assert set(payload) == {"schema", "workload", "repeats", "results"}
    assert set(payload["workload"]) == {
        "shape", "consistency", "heuristic", "seed",
    }
    assert payload["results"], "empty results"
    for entry in payload["results"]:
        assert set(entry) == {
            "arm", "n_tasks", "batch_s", "service_s", "overhead",
            "throughput_rps", "shed_fraction", "decision_p99_s", "windows",
        }
        assert entry["arm"] in ARMS
        assert entry["n_tasks"] > 0
        assert entry["batch_s"] > 0 and entry["service_s"] > 0
        assert entry["overhead"] == pytest.approx(
            entry["service_s"] / entry["batch_s"]
        )
        assert entry["throughput_rps"] > 0
        assert 0.0 <= entry["shed_fraction"] <= 1.0
        assert entry["decision_p99_s"] >= 0.0
        assert entry["windows"] >= 1
        if entry["arm"] == "unlimited":
            assert entry["shed_fraction"] == 0.0


def test_service_throughput_smoke():
    payload = run_sweep(sizes=SIZES[:1])
    validate_payload(payload)
    for entry in payload["results"]:
        if entry["arm"] != "unlimited":
            continue
        assert entry["overhead"] <= SMOKE_SLOWDOWN_LIMIT, (
            f"service plane is {entry['overhead']:.2f}x the batch scheduler "
            f"at n_tasks={entry['n_tasks']} (limit {SMOKE_SLOWDOWN_LIMIT}x)"
        )


def test_artifact_matches_schema():
    """The committed throughput trajectory must stay machine-readable."""
    if not ARTIFACT.exists():
        pytest.skip(f"{ARTIFACT.name} not generated yet")
    validate_payload(json.loads(ARTIFACT.read_text(encoding="utf-8")))


@pytest.mark.skipif(
    os.environ.get("BENCH_SERVICE_FULL") != "1",
    reason="full sweep is opt-in: BENCH_SERVICE_FULL=1",
)
def test_service_throughput_full_sweep():
    payload = run_sweep(SIZES)
    validate_payload(payload)
    ARTIFACT.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    lines = [f"throughput trajectory written to {ARTIFACT}"]
    for entry in payload["results"]:
        lines.append(
            f"{entry['arm']:>9} n={entry['n_tasks']:<5} "
            f"service {entry['service_s'] * 1e3:8.2f} ms  "
            f"overhead {entry['overhead']:5.2f}x  "
            f"{entry['throughput_rps']:10.0f} req/s  "
            f"shed {entry['shed_fraction']:5.1%}  "
            f"p99 {entry['decision_p99_s'] * 1e6:7.1f} µs"
        )
    print("\n".join(lines))
