"""Extension bench — trust gains across all four heterogeneity classes.

The paper evaluates only LoLo; this sweep runs the frozen configuration
over LoLo / LoHi / HiLo / HiHi and reports the trust-aware improvement per
class, showing that the trust advantage is robust to (and roughly
independent of) EEC heterogeneity — the gain comes from the security
multiplier, not from the cost landscape.
"""

from conftest import save_and_echo

from repro.experiments.config import paper_policies, paper_spec
from repro.experiments.runner import run_paired_cell
from repro.metrics.report import Table, format_percent, format_seconds
from repro.workloads.consistency import Consistency
from repro.workloads.heterogeneity import HIHI, HILO, LOHI, LOLO

REPS = 10


def test_heterogeneity_sweep(benchmark, results_dir):
    aware, unaware = paper_policies()

    def run_all():
        cells = {}
        for het in (LOLO, LOHI, HILO, HIHI):
            spec = paper_spec(50, Consistency.INCONSISTENT, heterogeneity=het)
            cells[het.name] = run_paired_cell(
                spec, "mct", aware, unaware, replications=REPS
            )
        return cells

    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        headers=["Heterogeneity", "Unaware CT", "Aware CT", "Improvement"],
        title="Trust gains across heterogeneity classes (MCT, 50 tasks).",
    )
    for name, cell in cells.items():
        table.add_row(
            name,
            format_seconds(cell.unaware_completion.mean),
            format_seconds(cell.aware_completion.mean),
            format_percent(cell.mean_improvement),
        )
    save_and_echo(results_dir, "heterogeneity_sweep", table.render())

    improvements = [c.mean_improvement for c in cells.values()]
    # Robustness: the gain holds in every class and stays in a narrow band.
    assert min(improvements) > 0.20
    assert max(improvements) - min(improvements) < 0.15
    # Higher heterogeneity means costlier tasks in absolute terms.
    assert (
        cells["HiHi"].unaware_completion.mean
        > cells["LoLo"].unaware_completion.mean * 10
    )
