"""Table 9 — trust-aware vs unaware Sufferage, consistent LoLo (paper: ~33%)."""

from _scheduling import run_table_bench


def test_table9_sufferage_consistent(benchmark, results_dir):
    run_table_bench(benchmark, results_dir, 9, improvement_band=(0.15, 0.45))
