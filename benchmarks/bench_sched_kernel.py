"""Scaling bench — scheduling-kernel perf trajectory (``BENCH_sched.json``).

Sweeps the batch heuristics over growing meta-requests on the Table-6 shape
(inconsistent Hi/Hi heterogeneity, 16 machines) and records per-heuristic
wall time of the reference loops vs the vectorised kernels vs the
heap-backed scale kernels (:mod:`repro.scheduling.scale`), plus the
speedups, as a machine-readable JSON artifact at the repository root.  The
artifact is the project's perf trajectory: regenerate it after kernel work
and commit it so regressions show up in review as a diff.

Three entry points:

* ``test_sched_kernel_smoke`` — CI guard: runs the smallest size (all
  three kernel families, schema validated in-memory, vectorised must not
  fall behind the reference by more than 1.5x) **and** one large-n
  chunked case (n=4096, chunks smaller than the workload) asserting the
  heap kernels stay bit-identical to the vectorised ones and inside the
  same 1.5x envelope.
* ``test_sched_kernel_scale_smoke`` — opt-in via ``BENCH_SCHED_SCALE=1``
  (CI runs it as its own job): the n=10⁵ scale path, pinned by digest
  against the committed trajectory's workload instead of an in-run
  oracle — the vectorised kernel would need minutes where the scale
  kernel needs seconds.
* ``test_sched_kernel_full_sweep`` — the real sweep; opt-in via
  ``BENCH_SCHED_FULL=1`` since it plans up to 10⁶ tasks.  Writes
  ``BENCH_sched.json``.

Caps keep the sweep honest *and* finite: reference timings stop at
``REFERENCE_CAP`` tasks (the pure-Python loops are quadratic in
practice), vectorised timings at ``VECTORIZED_CAP`` (dense O(n) rescans
per round), and each heap kernel at its own ``HEAP_CAPS`` entry —
Min-min's claim queues reach 10⁶, while Max-min and Sufferage do not
decompose per machine and stay parity-class with the vectorised kernels
(their value at scale is the bounded-memory streamed assembly), so
timing them past 10⁵ would only burn hours re-measuring a known
quadratic.  Above a cap the corresponding field is ``null``.  Whenever
two kernel families run at the same size their plans are asserted
identical, so every artifact regeneration re-proves bit-identity at the
overlapping sizes.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.scheduling.costs import CostProvider
from repro.scheduling.fast import (
    FastMaxMinHeuristic,
    FastMinMinHeuristic,
    FastSufferageHeuristic,
)
from repro.scheduling.maxmin import MaxMinHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.scale import (
    HeapMaxMinHeuristic,
    HeapMinMinHeuristic,
    HeapSufferageHeuristic,
)
from repro.scheduling.sufferage import SufferageHeuristic
from repro.workloads.consistency import Consistency
from repro.workloads.heterogeneity import HIHI
from repro.workloads.scenario import ScenarioSpec, materialize

SCHEMA = "repro.bench.sched/v2"
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_sched.json"
SIZES = (64, 256, 1024, 4096, 100_000, 1_000_000)
N_MACHINES = 16
SEED = 0
REFERENCE_CAP = 1024
VECTORIZED_CAP = 100_000
HEAP_CAPS = {"min-min": 1_000_000, "max-min": 100_000, "sufferage": 100_000}
REPEATS = 3
#: Above this size one timed run (after a cheap cache warm-up) replaces
#: best-of-``REPEATS``: the kernels run for seconds-to-minutes, far above
#: timer noise, and the sweep must terminate on one core.
SINGLE_REPEAT_ABOVE = 4096
#: CI guard: the vectorised kernel must not fall behind the reference by
#: more than this factor at the smoke size.
SMOKE_SLOWDOWN_LIMIT = 1.5
#: CI guard for the large-n chunked smoke: max heap/vectorized wall-time
#: ratio per family.  Measured ratios at n=4096 on one core: min-min 0.25
#: (the claim queues must keep *winning* — 0.75 is a real regression, not
#: noise), max-min 1.01 and sufferage 1.45 (parity-class by design — their
#: scale value is the bounded-memory streamed assembly — so the envelope
#: gates the measured parity with CI-noise slack).
SMOKE_HEAP_ENVELOPE = {"min-min": 0.75, "max-min": 1.5, "sufferage": 2.0}
#: Chunk size of the large-n smoke case — smaller than the workload so the
#: streaming assembly is genuinely exercised.
SMOKE_CHUNK = 1024

TRIPLES = (
    ("min-min", MinMinHeuristic, FastMinMinHeuristic, HeapMinMinHeuristic),
    ("max-min", MaxMinHeuristic, FastMaxMinHeuristic, HeapMaxMinHeuristic),
    ("sufferage", SufferageHeuristic, FastSufferageHeuristic, HeapSufferageHeuristic),
)


def build_case(n_tasks: int):
    spec = ScenarioSpec(
        n_tasks=n_tasks,
        n_machines=N_MACHINES,
        heterogeneity=HIHI,
        consistency=Consistency.INCONSISTENT,
        target_load=3.0,
    )
    scenario = materialize(spec, seed=SEED)
    costs = CostProvider(
        grid=scenario.grid, eec=scenario.eec, policy=TrustPolicy.aware()
    )
    return list(scenario.requests), costs, np.zeros(N_MACHINES)


def warm_provider(requests, costs) -> None:
    """One streamed assembly pass fills the trust-cost caches cheaply."""
    for _start, _chunk in costs.mapping_ecc_chunks(requests):
        pass


def time_plan(heuristic, requests, costs, avail, repeats: int) -> tuple[float, list]:
    """Best-of-``repeats`` wall time of a full ``plan()`` call.

    With ``repeats > 1`` the first (untimed) call warms the provider's
    trust-cost caches so every kernel is measured in its steady state; the
    single-repeat large sizes rely on :func:`warm_provider` instead.
    """
    plan = heuristic.plan(requests, costs, avail.copy()) if repeats > 1 else None
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        timed = heuristic.plan(requests, costs, avail.copy())
        best = min(best, time.perf_counter() - start)
    return best, (plan if plan is not None else timed)


def plan_keys(plan) -> list[tuple[int, int]]:
    return [(p.request.index, p.machine_index) for p in plan]


def plan_digest(plan) -> str:
    payload = ",".join(f"{p.request.index}:{p.machine_index}" for p in plan)
    return hashlib.sha256(payload.encode()).hexdigest()


def run_sweep(sizes, repeats: int = REPEATS) -> dict:
    """Time every kernel family at every size; returns the JSON payload."""
    results = []
    for n_tasks in sizes:
        requests, costs, avail = build_case(n_tasks)
        reps = 1 if n_tasks > SINGLE_REPEAT_ABOVE else repeats
        if reps == 1:
            warm_provider(requests, costs)
        for name, Reference, Fast, Heap in TRIPLES:
            fast_s = fast_plan = None
            if n_tasks <= VECTORIZED_CAP:
                fast_s, fast_plan = time_plan(Fast(), requests, costs, avail, reps)
            heap_s = heap_plan = None
            if n_tasks <= HEAP_CAPS[name]:
                heap_s, heap_plan = time_plan(Heap(), requests, costs, avail, reps)
            ref_s = None
            if n_tasks <= REFERENCE_CAP:
                ref_s, ref_plan = time_plan(Reference(), requests, costs, avail, reps)
                assert plan_keys(ref_plan) == plan_keys(fast_plan), (
                    f"{name} vectorized plan diverged at n_tasks={n_tasks}"
                )
            if fast_plan is None and heap_plan is None:
                # Every kernel family is capped at this size (max-min /
                # sufferage at 10⁶): nothing to time, no entry.
                continue
            if fast_plan is not None and heap_plan is not None:
                assert plan_keys(fast_plan) == plan_keys(heap_plan), (
                    f"{name} heap plan diverged at n_tasks={n_tasks}"
                )
            committed = heap_plan if heap_plan is not None else fast_plan
            assert len(committed) == n_tasks
            results.append(
                {
                    "heuristic": name,
                    "n_tasks": n_tasks,
                    "repeats": reps,
                    "reference_s": ref_s,
                    "vectorized_s": fast_s,
                    "heap_s": heap_s,
                    "speedup": (ref_s / fast_s) if ref_s is not None else None,
                    "heap_speedup": (
                        fast_s / heap_s
                        if fast_s is not None and heap_s is not None
                        else None
                    ),
                }
            )
    return {
        "schema": SCHEMA,
        "workload": {
            "heterogeneity": "HiHi",
            "consistency": "inconsistent",
            "n_machines": N_MACHINES,
            "target_load": 3.0,
            "seed": SEED,
        },
        "reference_cap": REFERENCE_CAP,
        "vectorized_cap": VECTORIZED_CAP,
        "heap_caps": dict(HEAP_CAPS),
        "repeats": repeats,
        "results": results,
    }


def validate_payload(payload: dict) -> None:
    """Schema check shared by the CI smoke test and artifact consumers."""
    assert payload["schema"] == SCHEMA
    assert set(payload) == {
        "schema", "workload", "reference_cap", "vectorized_cap", "heap_caps",
        "repeats", "results",
    }
    workload = payload["workload"]
    assert set(workload) == {
        "heterogeneity", "consistency", "n_machines", "target_load", "seed",
    }
    names = {name for name, _, _, _ in TRIPLES}
    assert set(payload["heap_caps"]) == names
    assert payload["results"], "empty results"
    for entry in payload["results"]:
        assert set(entry) == {
            "heuristic", "n_tasks", "repeats", "reference_s", "vectorized_s",
            "heap_s", "speedup", "heap_speedup",
        }
        assert entry["heuristic"] in names
        assert entry["n_tasks"] > 0
        assert entry["repeats"] >= 1
        n = entry["n_tasks"]
        if n <= payload["vectorized_cap"]:
            assert entry["vectorized_s"] > 0
        else:
            assert entry["vectorized_s"] is None
        if n <= payload["heap_caps"][entry["heuristic"]]:
            assert entry["heap_s"] > 0
        else:
            assert entry["heap_s"] is None
        if n <= payload["reference_cap"]:
            assert entry["reference_s"] > 0
            assert entry["speedup"] == pytest.approx(
                entry["reference_s"] / entry["vectorized_s"]
            )
        else:
            assert entry["reference_s"] is None and entry["speedup"] is None
        if entry["vectorized_s"] is not None and entry["heap_s"] is not None:
            assert entry["heap_speedup"] == pytest.approx(
                entry["vectorized_s"] / entry["heap_s"]
            )
        else:
            assert entry["heap_speedup"] is None


def test_sched_kernel_smoke():
    payload = run_sweep(sizes=SIZES[:1], repeats=1)
    validate_payload(payload)
    for entry in payload["results"]:
        assert entry["speedup"] >= 1.0 / SMOKE_SLOWDOWN_LIMIT, (
            f"vectorized {entry['heuristic']} fell behind the reference "
            f"({entry['speedup']:.2f}x) at n_tasks={entry['n_tasks']}"
        )


def test_sched_kernel_smoke_large_chunked():
    """One large-n case through the streaming scale path, every smoke run.

    n=4096 with 1024-task chunks: big enough that the chunk iterator
    yields several chunks and the claim structures leave their trivial
    regime, small enough for CI.  The heap kernels must reproduce the
    vectorised plans exactly and stay inside the smoke envelope.
    """
    n_tasks = SIZES[3]
    requests, costs, avail = build_case(n_tasks)
    warm_provider(requests, costs)
    for name, _Reference, Fast, Heap in TRIPLES:
        # Best-of-2 keeps the ratio guard stable against one-off stalls.
        fast_s, fast_plan = time_plan(Fast(), requests, costs, avail, repeats=2)
        heap_s, heap_plan = time_plan(
            Heap(chunk_size=SMOKE_CHUNK), requests, costs, avail, repeats=2
        )
        assert plan_keys(fast_plan) == plan_keys(heap_plan), (
            f"{name} heap plan diverged at n_tasks={n_tasks}"
        )
        assert heap_s <= fast_s * SMOKE_HEAP_ENVELOPE[name], (
            f"heap {name} fell outside its envelope "
            f"({heap_s / fast_s:.2f}x vs {SMOKE_HEAP_ENVELOPE[name]}x allowed) "
            f"at n_tasks={n_tasks}"
        )


#: Pinned digest of the n=10⁵ min-min scale plan on the bench workload
#: (seed 0, Hi/Hi inconsistent, 16 machines) — the scale smoke's oracle.
SCALE_SMOKE_N = 100_000
SCALE_SMOKE_DIGEST = (
    "c809ddce111964f3cca8c38494a90f0673b01227ab9a6b380c5d65044d77bb43"
)
#: Generous wall-time ceiling for the scale smoke: the measured time is
#: ~1.5 s on one core, so tripping this means the claim queues lost their
#: near-linear round cost, not that the runner was slow.
SCALE_SMOKE_CEILING_S = 120.0


@pytest.mark.skipif(
    os.environ.get("BENCH_SCHED_SCALE") != "1",
    reason="scale smoke is opt-in: BENCH_SCHED_SCALE=1",
)
def test_sched_kernel_scale_smoke():
    requests, costs, avail = build_case(SCALE_SMOKE_N)
    warm_provider(requests, costs)
    heap_s, plan = time_plan(HeapMinMinHeuristic(), requests, costs, avail, repeats=1)
    assert len(plan) == SCALE_SMOKE_N
    assert plan_digest(plan) == SCALE_SMOKE_DIGEST
    assert heap_s <= SCALE_SMOKE_CEILING_S, (
        f"min-min-heap took {heap_s:.1f}s at n={SCALE_SMOKE_N}"
    )


def test_artifact_matches_schema():
    """The committed perf trajectory must stay machine-readable."""
    if not ARTIFACT.exists():
        pytest.skip(f"{ARTIFACT.name} not generated yet")
    validate_payload(json.loads(ARTIFACT.read_text(encoding="utf-8")))


@pytest.mark.skipif(
    os.environ.get("BENCH_SCHED_FULL") != "1",
    reason="full sweep is opt-in: BENCH_SCHED_FULL=1",
)
def test_sched_kernel_full_sweep():
    payload = run_sweep(SIZES)
    validate_payload(payload)
    ARTIFACT.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    lines = [f"perf trajectory written to {ARTIFACT}"]
    for entry in payload["results"]:
        fast_ms = (
            f"{entry['vectorized_s'] * 1e3:10.2f}"
            if entry["vectorized_s"] is not None
            else "       n/a"
        )
        heap_ms = (
            f"{entry['heap_s'] * 1e3:10.2f}"
            if entry["heap_s"] is not None
            else "       n/a"
        )
        heap_x = (
            f"{entry['heap_speedup']:6.2f}x"
            if entry["heap_speedup"] is not None
            else "   n/a"
        )
        lines.append(
            f"{entry['heuristic']:>10} n={entry['n_tasks']:<8} "
            f"vectorized {fast_ms} ms  heap {heap_ms} ms  heap-speedup {heap_x}"
        )
    print("\n".join(lines))
