"""Scaling bench — scheduling-kernel perf trajectory (``BENCH_sched.json``).

Sweeps the batch heuristics over growing meta-requests on the Table-6 shape
(inconsistent Hi/Hi heterogeneity, 16 machines) and records per-heuristic
wall time of the reference loops vs the vectorised kernels, plus the
speedup, as a machine-readable JSON artifact at the repository root.  The
artifact is the project's perf trajectory: regenerate it after kernel work
and commit it so regressions show up in review as a diff.

Two entry points:

* ``test_sched_kernel_smoke`` — CI guard: runs the smallest size only,
  validates the artifact schema in-memory and fails if the vectorised
  kernel falls behind the reference by more than 1.5x (it should *win*;
  the slack absorbs CI-runner noise).
* ``test_sched_kernel_full_sweep`` — the real sweep; opt-in via
  ``BENCH_SCHED_FULL=1`` since the largest size plans 4096 tasks.  Writes
  ``BENCH_sched.json``.

Reference timings are capped at ``REFERENCE_CAP`` tasks (the pure-Python
Sufferage loop is quadratic in practice); beyond it only the vectorised
kernels are timed and ``speedup`` is ``null``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.scheduling.costs import CostProvider
from repro.scheduling.fast import (
    FastMaxMinHeuristic,
    FastMinMinHeuristic,
    FastSufferageHeuristic,
)
from repro.scheduling.maxmin import MaxMinHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.sufferage import SufferageHeuristic
from repro.workloads.consistency import Consistency
from repro.workloads.heterogeneity import HIHI
from repro.workloads.scenario import ScenarioSpec, materialize

SCHEMA = "repro.bench.sched/v1"
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_sched.json"
SIZES = (64, 256, 1024, 4096)
N_MACHINES = 16
SEED = 0
REFERENCE_CAP = 1024
REPEATS = 3
#: CI guard: the vectorised kernel must not fall behind the reference by
#: more than this factor at the smoke size.
SMOKE_SLOWDOWN_LIMIT = 1.5

PAIRS = (
    ("min-min", MinMinHeuristic, FastMinMinHeuristic),
    ("max-min", MaxMinHeuristic, FastMaxMinHeuristic),
    ("sufferage", SufferageHeuristic, FastSufferageHeuristic),
)


def build_case(n_tasks: int):
    spec = ScenarioSpec(
        n_tasks=n_tasks,
        n_machines=N_MACHINES,
        heterogeneity=HIHI,
        consistency=Consistency.INCONSISTENT,
        target_load=3.0,
    )
    scenario = materialize(spec, seed=SEED)
    costs = CostProvider(
        grid=scenario.grid, eec=scenario.eec, policy=TrustPolicy.aware()
    )
    return list(scenario.requests), costs, np.zeros(N_MACHINES)


def time_plan(heuristic, requests, costs, avail, repeats: int) -> tuple[float, list]:
    """Best-of-``repeats`` wall time of a full ``plan()`` call.

    The first (untimed) call warms the provider's trust-cost caches so both
    kernels are measured in their steady state.
    """
    plan = heuristic.plan(requests, costs, avail.copy())
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        heuristic.plan(requests, costs, avail.copy())
        best = min(best, time.perf_counter() - start)
    return best, plan


def plan_keys(plan) -> list[tuple[int, int]]:
    return [(p.request.index, p.machine_index) for p in plan]


def run_sweep(sizes, repeats: int = REPEATS) -> dict:
    """Time every heuristic pair at every size; returns the JSON payload."""
    results = []
    for n_tasks in sizes:
        requests, costs, avail = build_case(n_tasks)
        for name, Reference, Fast in PAIRS:
            fast_s, fast_plan = time_plan(Fast(), requests, costs, avail, repeats)
            if n_tasks <= REFERENCE_CAP:
                ref_s, ref_plan = time_plan(
                    Reference(), requests, costs, avail, repeats
                )
                assert plan_keys(ref_plan) == plan_keys(fast_plan), (
                    f"{name} plans diverged at n_tasks={n_tasks}"
                )
                speedup = ref_s / fast_s
            else:
                ref_s = None
                speedup = None
            results.append(
                {
                    "heuristic": name,
                    "n_tasks": n_tasks,
                    "reference_s": ref_s,
                    "vectorized_s": fast_s,
                    "speedup": speedup,
                }
            )
    return {
        "schema": SCHEMA,
        "workload": {
            "heterogeneity": "HiHi",
            "consistency": "inconsistent",
            "n_machines": N_MACHINES,
            "target_load": 3.0,
            "seed": SEED,
        },
        "reference_cap": REFERENCE_CAP,
        "repeats": repeats,
        "results": results,
    }


def validate_payload(payload: dict) -> None:
    """Schema check shared by the CI smoke test and artifact consumers."""
    assert payload["schema"] == SCHEMA
    assert set(payload) == {"schema", "workload", "reference_cap", "repeats", "results"}
    workload = payload["workload"]
    assert set(workload) == {
        "heterogeneity", "consistency", "n_machines", "target_load", "seed",
    }
    assert payload["results"], "empty results"
    for entry in payload["results"]:
        assert set(entry) == {
            "heuristic", "n_tasks", "reference_s", "vectorized_s", "speedup",
        }
        assert entry["heuristic"] in {name for name, _, _ in PAIRS}
        assert entry["n_tasks"] > 0
        assert entry["vectorized_s"] > 0
        if entry["n_tasks"] <= payload["reference_cap"]:
            assert entry["reference_s"] > 0
            assert entry["speedup"] == pytest.approx(
                entry["reference_s"] / entry["vectorized_s"]
            )
        else:
            assert entry["reference_s"] is None and entry["speedup"] is None


def test_sched_kernel_smoke():
    payload = run_sweep(sizes=SIZES[:1], repeats=1)
    validate_payload(payload)
    for entry in payload["results"]:
        assert entry["speedup"] >= 1.0 / SMOKE_SLOWDOWN_LIMIT, (
            f"vectorized {entry['heuristic']} fell behind the reference "
            f"({entry['speedup']:.2f}x) at n_tasks={entry['n_tasks']}"
        )


def test_artifact_matches_schema():
    """The committed perf trajectory must stay machine-readable."""
    if not ARTIFACT.exists():
        pytest.skip(f"{ARTIFACT.name} not generated yet")
    validate_payload(json.loads(ARTIFACT.read_text(encoding="utf-8")))


@pytest.mark.skipif(
    os.environ.get("BENCH_SCHED_FULL") != "1",
    reason="full sweep is opt-in: BENCH_SCHED_FULL=1",
)
def test_sched_kernel_full_sweep():
    payload = run_sweep(SIZES)
    validate_payload(payload)
    ARTIFACT.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    lines = [f"perf trajectory written to {ARTIFACT}"]
    for entry in payload["results"]:
        speedup = (
            f"{entry['speedup']:6.2f}x" if entry["speedup"] is not None else "   n/a"
        )
        lines.append(
            f"{entry['heuristic']:>10} n={entry['n_tasks']:<5} "
            f"vectorized {entry['vectorized_s'] * 1e3:8.2f} ms  speedup {speedup}"
        )
    print("\n".join(lines))
