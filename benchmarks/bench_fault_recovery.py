"""Extension bench — fault injection and failure-driven trust evolution.

One resource domain crashes most execution attempts; failures are fed to
the client-domain agents as maximally unsatisfactory transactions.  Over a
few closed-loop rounds the trust-aware MCT learns to route around the
flaky domain, while the trust-unaware baseline keeps paying for retries:
the aware side must show strictly higher goodput *and* a strictly lower
wasted-work fraction on every seed, with every submitted request accounted
for exactly once (completed + dropped + rejected).
"""

from conftest import save_and_echo

from repro.experiments import run_fault_recovery
from repro.metrics.report import Table, format_percent

SEEDS = (1, 2, 3)


def test_fault_recovery(benchmark, results_dir):
    def run_all():
        return {seed: run_fault_recovery(seed=seed) for seed in SEEDS}

    studies = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        headers=[
            "Seed", "Policy", "Completed", "Dropped", "Failures",
            "Goodput", "Wasted work",
        ],
        title="Fault recovery: trust-aware vs unaware MCT under a flaky RD.",
    )
    for seed, study in studies.items():
        for o in (study.unaware, study.aware):
            table.add_row(
                seed,
                o.label,
                f"{o.completed}/{o.submitted}",
                o.dropped,
                o.failures,
                f"{o.goodput:.5f}",
                format_percent(o.wasted_work_fraction),
            )
    save_and_echo(results_dir, "fault_recovery", table.render())

    for study in studies.values():
        for o in (study.aware, study.unaware):
            assert o.completed + o.dropped + o.rejected == o.submitted
        assert study.aware.goodput > study.unaware.goodput
        assert (
            study.aware.wasted_work_fraction
            < study.unaware.wasted_work_fraction
        )
