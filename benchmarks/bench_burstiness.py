"""Extension bench — trust gains under bursty (MMPP) arrivals.

The paper assumes Poisson arrivals; real submission streams are bursty.
This bench compares the trust-aware improvement under Poisson arrivals and
under load-equivalent MMPP arrivals of increasing burstiness: the advantage
persists (it is a service-cost effect, not an arrival-pattern effect).
"""

from conftest import save_and_echo

from repro.experiments.config import paper_policies, paper_spec
from repro.experiments.runner import run_paired_cell
from repro.metrics.report import Table, format_percent
from repro.workloads.consistency import Consistency

REPS = 10
BURSTINESS = (None, 3.0, 8.0)


def test_burstiness(benchmark, results_dir):
    aware, unaware = paper_policies()

    def run_all():
        cells = {}
        for burst in BURSTINESS:
            spec = paper_spec(50, Consistency.INCONSISTENT, burstiness=burst)
            cells[burst] = run_paired_cell(
                spec, "mct", aware, unaware, replications=REPS
            )
        return cells

    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        headers=["Arrivals", "Improvement", "Unaware utilisation"],
        title="Trust gains under bursty arrivals (MCT, 50 tasks).",
    )
    for burst, cell in cells.items():
        label = "Poisson" if burst is None else f"MMPP x{burst:g}"
        table.add_row(
            label,
            format_percent(cell.mean_improvement),
            format_percent(cell.unaware_utilization.mean),
        )
    save_and_echo(results_dir, "burstiness", table.render())

    # The advantage survives burstiness.
    for cell in cells.values():
        assert cell.mean_improvement > 0.25
