"""Table 7 — trust-aware vs unaware Min-min, consistent LoLo (paper: ~25%)."""

from _scheduling import run_table_bench


def test_table7_minmin_consistent(benchmark, results_dir):
    run_table_bench(benchmark, results_dir, 7, improvement_band=(0.12, 0.40))
