"""Table 6 — trust-aware vs unaware Min-min, inconsistent LoLo (paper: ~23%)."""

from _scheduling import run_table_bench


def test_table6_minmin_inconsistent(benchmark, results_dir):
    run_table_bench(benchmark, results_dir, 6, improvement_band=(0.12, 0.38))
