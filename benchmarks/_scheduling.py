"""Shared driver for the scheduling-table benches (Tables 4-9).

Each bench regenerates its table with the frozen paper configuration,
asserts the qualitative shape (trust-aware wins, improvement within a band
around the paper's value), and saves the rendering.
"""

from __future__ import annotations

from conftest import save_and_echo

from repro.experiments.tables import reproduce_scheduling_table

#: Replications per cell; the paper's tables are averages of repeated
#: stochastic runs, and 30 keeps the bench under ~10 s per table.
REPLICATIONS = 30


def run_table_bench(
    benchmark,
    results_dir,
    number: int,
    *,
    improvement_band: tuple[float, float],
) -> None:
    """Regenerate table ``number`` and assert its shape."""
    repro = benchmark.pedantic(
        reproduce_scheduling_table,
        kwargs=dict(number=number, replications=REPLICATIONS),
        rounds=1,
        iterations=1,
    )
    save_and_echo(results_dir, repro.name, repro.rendering)
    lo, hi = improvement_band
    for n_tasks, cell in repro.data["cells"].items():
        assert cell.aware_completion.mean < cell.unaware_completion.mean, (
            f"trust-aware must win at n={n_tasks}"
        )
        assert lo <= cell.mean_improvement <= hi, (
            f"improvement {cell.mean_improvement:.1%} at n={n_tasks} outside "
            f"[{lo:.0%}, {hi:.0%}]"
        )
        # The paper's >90% utilisation regime (batch modes idle during
        # batch-formation windows, so their floor is lower).
        assert cell.unaware_utilization.mean > 0.60
