"""Figure 1 — the trust-aware RMS component architecture.

Builds the live component graph, checks the wiring the block diagram shows,
and additionally exercises the agent loop: transactions flow through the
Figure-1 agents and update the shared trust-level table.
"""

import numpy as np
from conftest import save_and_echo

from repro.experiments.figures import reproduce_figure1
from repro.grid.agents import AgentFleet
from repro.workloads.scenario import ScenarioSpec, materialize


def test_figure1_architecture(benchmark, results_dir):
    fig = benchmark(reproduce_figure1)
    save_and_echo(results_dir, "figure1_architecture", fig.rendering)
    g = fig.graph
    agents = [n for n, d in g.nodes(data=True) if d.get("kind") == "agent"]
    assert agents, "the diagram must contain monitoring agents"
    for agent in agents:
        assert g.has_edge(agent, "trust-level-table")


def test_figure1_agent_loop(benchmark, results_dir):
    """Drive transactions through the agents and measure table updates."""
    scenario = materialize(ScenarioSpec(cd_range=(2, 2), rd_range=(2, 2)), seed=3)
    rng = np.random.default_rng(1)

    def drive():
        fleet = AgentFleet.for_table(scenario.grid.trust_table)
        activity = scenario.grid.catalog.by_index(0)
        for t in range(200):
            cd_agent = fleet.cd_agents[t % 2]
            satisfaction = float(rng.uniform(0.6, 1.0))
            cd_agent.observe_transaction(t % 2, activity, satisfaction, float(t))
        return fleet

    fleet = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert fleet.total_published() > 0
