"""Instrumentation overhead bench — the observability tax, measured.

Runs the Table-6 scenario (Min-min, inconsistent LoLo) three ways:

* **baseline** — the scheduler constructed exactly as pre-observability
  code did (no ``metrics=``/``tracer=`` arguments): this is the shipped
  default and the pre-PR call signature, so any cost it carries is the
  cost of the disabled-path guards themselves;
* **disabled** — explicitly passing a disabled registry and tracer (must
  be indistinguishable from baseline: same code path);
* **enabled** — full metrics + tracing.

The bench asserts the disabled configuration stays within the 2% overhead
budget of the baseline (best-of timing, so scheduler noise is excluded),
and records the enabled-mode numbers in ``benchmarks/results/`` so an
instrumentation regression breaks the build, not just the numbers.
"""

import time

import pytest

from conftest import save_and_echo

from repro.metrics.report import Table, format_percent
from repro.obs.metrics import MetricsRegistry
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.scheduler import TRMScheduler
from repro.sim.trace import Tracer
from repro.workloads.consistency import Consistency
from repro.workloads.scenario import ScenarioSpec, materialize

#: Table-6 configuration: Min-min over the paper's inconsistent LoLo EECs,
#: scaled up so per-run time dominates timer noise.
N_TASKS = 600
BATCH_INTERVAL = 600.0
#: Acceptance budget for the disabled-instrumentation path.
OVERHEAD_BUDGET = 0.02
#: Best-of trials; the minimum excludes scheduler/OS noise.
TRIALS = 9


@pytest.fixture(scope="module")
def scenario():
    spec = ScenarioSpec(
        n_tasks=N_TASKS, consistency=Consistency.INCONSISTENT, target_load=2.0
    )
    return materialize(spec, seed=0)


def run_once(scenario, **kwargs):
    return TRMScheduler(
        scenario.grid,
        scenario.eec,
        TrustPolicy.aware(),
        MinMinHeuristic(),
        batch_interval=BATCH_INTERVAL,
        **kwargs,
    ).run(scenario.requests)


def best_of(fn, trials: int = TRIALS) -> float:
    best = float("inf")
    for _ in range(trials):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_enabled_instrumentation_speed(benchmark, scenario):
    """pytest-benchmark numbers for the fully instrumented path."""
    result = benchmark(
        lambda: run_once(
            scenario, metrics=MetricsRegistry(enabled=True), tracer=Tracer()
        )
    )
    assert result.n_completed == N_TASKS


def test_disabled_overhead_within_budget(benchmark, scenario, results_dir):
    """Disabled instrumentation must cost < 2% over the pre-PR call shape."""

    def measure_all():
        return {
            "baseline (pre-PR call shape)": best_of(lambda: run_once(scenario)),
            "disabled registry + tracer": best_of(
                lambda: run_once(
                    scenario,
                    metrics=MetricsRegistry.disabled(),
                    tracer=Tracer.disabled(),
                )
            ),
            "enabled registry + tracer": best_of(
                lambda: run_once(
                    scenario,
                    metrics=MetricsRegistry(enabled=True),
                    tracer=Tracer(),
                )
            ),
        }

    def measure_with_retry():
        # Re-measure on a miss: a single noisy round on a shared CI runner
        # must not fail the budget check if a clean round can satisfy it.
        for _attempt in range(3):
            timings = measure_all()
            baseline = timings["baseline (pre-PR call shape)"]
            disabled = timings["disabled registry + tracer"]
            if disabled <= baseline * (1.0 + OVERHEAD_BUDGET):
                break
        return timings

    timings = benchmark.pedantic(measure_with_retry, rounds=1, iterations=1)
    baseline = timings["baseline (pre-PR call shape)"]
    table = Table(
        headers=["Configuration", "Best-of time (s)", "Overhead vs baseline"],
        title=(
            f"Observability overhead, Table-6 Min-min scenario "
            f"({N_TASKS} tasks, best of {TRIALS}):"
        ),
    )
    for label, seconds in timings.items():
        table.add_row(
            label, f"{seconds:.4f}", format_percent(seconds / baseline - 1.0)
        )
    save_and_echo(results_dir, "obs_overhead", table.render())

    disabled = timings["disabled registry + tracer"]
    assert disabled <= baseline * (1.0 + OVERHEAD_BUDGET), (
        f"disabled instrumentation costs {disabled / baseline - 1.0:.1%}, "
        f"budget is {OVERHEAD_BUDGET:.0%}"
    )


def test_instrumented_results_identical(scenario):
    """The tax buys observation only: results must be bit-identical."""
    bare = run_once(scenario)
    observed = run_once(
        scenario, metrics=MetricsRegistry(enabled=True), tracer=Tracer()
    )
    assert bare.records == observed.records
    assert bare.rejected == observed.rejected
