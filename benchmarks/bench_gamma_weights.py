"""Extension bench — the direct-vs-reputation weighting (α, β).

Section 2.2 recommends α > β without evaluating it; this bench runs the
closed Figure-1 loop with Γ-publishing agents across the α spectrum and
reports the learned trust-level-table error against ground truth.  The
expected shape: pure direct trust (α = 1) is noisy under sparse evidence,
heavy reputation (α → 0) dilutes first-hand knowledge, the blend wins —
consistent with the paper's "α will be larger than β" guidance.
"""

from conftest import save_and_echo

from repro.analysis.gamma_weights import ablate_gamma_weights
from repro.metrics.report import Table

ALPHAS = (1.0, 0.9, 0.7, 0.5, 0.3, 0.0)


def test_gamma_weights(benchmark, results_dir):
    outcomes = benchmark.pedantic(
        ablate_gamma_weights,
        kwargs=dict(alphas=ALPHAS, rounds=5, requests_per_round=30),
        rounds=1,
        iterations=1,
    )

    table = Table(
        headers=["alpha (direct)", "beta (reputation)", "Mean level error", "Updates"],
        title="Trust-table accuracy vs Γ weighting (closed loop, 5 rounds).",
    )
    for o in outcomes:
        table.add_row(
            f"{o.alpha:.1f}", f"{o.beta:.1f}", f"{o.mean_level_error:.2f}",
            o.published_updates,
        )
    save_and_echo(results_dir, "gamma_weights", table.render())

    by_alpha = {o.alpha: o.mean_level_error for o in outcomes}
    # Everything learns (cold-table error against this truth is ~2.2).
    assert max(by_alpha.values()) < 1.6
    # Some blended weighting is at least as good as either extreme.
    best_blend = min(v for a, v in by_alpha.items() if 0.0 < a < 1.0)
    assert best_blend <= by_alpha[1.0] + 1e-9
    assert best_blend <= by_alpha[0.0] + 1e-9
