"""Table 2 — rcp vs scp on a 100 Mbps network."""

from conftest import save_and_echo

from repro.experiments.tables import reproduce_table2


def test_table2_transfer_100mbps(benchmark, results_dir):
    repro = benchmark(reproduce_table2)
    save_and_echo(results_dir, "table2_transfer_100mbps", repro.rendering)
    rows = repro.data["rows"]
    # Paper shape: ~70% overhead at 1 MB, settling to ~36-37% for large files.
    assert rows[1]["overhead"] > 0.6
    assert 0.30 <= rows[1000]["overhead"] <= 0.42
    # Monotone decrease towards the steady state.
    assert rows[1]["overhead"] > rows[100]["overhead"] >= rows[1000]["overhead"] - 0.02
