"""Extension bench — collusion resistance of the recommender trust factor.

Section 2.2 motivates ``R(z, y)`` as the defence against reputation
inflation by colluding cliques; this bench quantifies it across clique
sizes: the raw inflation grows with the clique, and R removes the bulk of
it at every size.
"""

from conftest import save_and_echo

from repro.analysis.collusion import run_collusion_study
from repro.metrics.report import Table, format_percent

CLIQUE_SIZES = (2, 4, 6, 8)


def test_collusion_defense(benchmark, results_dir):
    def run_all():
        return {
            size: run_collusion_study(n_clique=size, n_honest=8, seed=size)
            for size in CLIQUE_SIZES
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        headers=[
            "Clique size",
            "True level",
            "Reputation w/o R",
            "Reputation with R",
            "Defense effectiveness",
        ],
        title="Collusion resistance of the recommender trust factor R.",
    )
    for size, o in outcomes.items():
        table.add_row(
            size,
            f"{o.clique_truth:.2f}",
            f"{o.clique_estimate_undefended:.2f}",
            f"{o.clique_estimate_defended:.2f}",
            format_percent(o.defense_effectiveness, 0),
        )
    save_and_echo(results_dir, "collusion_defense", table.render())

    for o in outcomes.values():
        assert o.inflation_undefended > 0.05
        assert o.defense_effectiveness > 0.6
