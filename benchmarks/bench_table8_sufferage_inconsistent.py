"""Table 8 — trust-aware vs unaware Sufferage, inconsistent LoLo (paper: ~39%)."""

from _scheduling import run_table_bench


def test_table8_sufferage_inconsistent(benchmark, results_dir):
    run_table_bench(benchmark, results_dir, 8, improvement_band=(0.15, 0.45))
