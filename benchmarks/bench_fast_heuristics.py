"""Performance bench — reference vs vectorised batch heuristics.

Measures the planning throughput of the reference Min-min/Sufferage against
their vectorised fast paths on a large meta-request, per the HPC guides'
"measure, don't guess" rule.  The equivalence of the produced plans is
asserted in-line (and property-tested in the test suite).
"""

import numpy as np
import pytest

from conftest import save_and_echo

from repro.metrics.report import Table
from repro.scheduling.costs import CostProvider
from repro.scheduling.fast import FastMinMinHeuristic, FastSufferageHeuristic
from repro.scheduling.minmin import MinMinHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.sufferage import SufferageHeuristic
from repro.workloads.scenario import ScenarioSpec, materialize

N_TASKS = 300
N_MACHINES = 16


@pytest.fixture(scope="module")
def big_batch():
    spec = ScenarioSpec(n_tasks=N_TASKS, n_machines=N_MACHINES, target_load=3.0)
    scenario = materialize(spec, seed=0)
    costs = CostProvider(
        grid=scenario.grid, eec=scenario.eec, policy=TrustPolicy.aware()
    )
    return list(scenario.requests), costs, np.zeros(N_MACHINES)


@pytest.mark.parametrize(
    "Heuristic",
    [MinMinHeuristic, FastMinMinHeuristic, SufferageHeuristic, FastSufferageHeuristic],
    ids=lambda h: h.__name__,
)
def test_batch_planning_speed(benchmark, big_batch, Heuristic):
    requests, costs, avail = big_batch
    plan = benchmark(lambda: Heuristic().plan(requests, costs, avail.copy()))
    assert len(plan) == N_TASKS


def test_fast_paths_match_reference(benchmark, big_batch, results_dir):
    requests, costs, avail = big_batch

    def compare_all():
        rows = []
        for Ref, Fast in (
            (MinMinHeuristic, FastMinMinHeuristic),
            (SufferageHeuristic, FastSufferageHeuristic),
        ):
            ref = Ref().plan(requests, costs, avail.copy())
            fast = Fast().plan(requests, costs, avail.copy())
            identical = [(p.request.index, p.machine_index) for p in ref] == [
                (p.request.index, p.machine_index) for p in fast
            ]
            rows.append((Ref.__name__, Fast.__name__, identical))
        return rows

    rows = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    assert all(identical for *_names, identical in rows)

    table = Table(
        headers=["Reference", "Fast path", "Plans identical"],
        title=f"Vectorised fast paths, {N_TASKS} tasks x {N_MACHINES} machines.",
    )
    for row in rows:
        table.add_row(*row)
    save_and_echo(results_dir, "fast_heuristics", table.render())
