"""Extension bench — hard trust constraints (admission control).

Sweeps the hard trust-cost threshold of the intro's "will not run on
untrusted resources" semantics: as the bound tightens, strict admission
control rejects more requests while the admitted ones run at ever lower
trust cost; the relaxed variant never rejects but degrades toward the
unconstrained schedule when the bound is unattainable.
"""

import numpy as np
from conftest import save_and_echo

from repro.metrics.report import Table, format_percent, format_seconds
from repro.scheduling.constraints import InfeasiblePolicy, TrustConstraint
from repro.scheduling.mct import MctHeuristic
from repro.scheduling.policy import TrustPolicy
from repro.scheduling.scheduler import TRMScheduler
from repro.workloads.scenario import ScenarioSpec, materialize

THRESHOLDS = (6, 2, 1, 0)
SEEDS = range(10)


def run_sweep():
    spec = ScenarioSpec(n_tasks=50, target_load=4.5, rd_range=(3, 4))
    rows = {}
    for threshold in THRESHOLDS:
        stats = {"rejection": [], "tc": [], "ct": []}
        for seed in SEEDS:
            scenario = materialize(spec, seed=seed)
            constraint = TrustConstraint(
                max_trust_cost=threshold, infeasible=InfeasiblePolicy.REJECT
            )
            result = TRMScheduler(
                scenario.grid,
                scenario.eec,
                TrustPolicy.aware(unaware_fraction=0.9),
                MctHeuristic(),
                constraint=constraint,
            ).run(scenario.requests)
            stats["rejection"].append(result.rejection_rate)
            if result.records:
                stats["tc"].append(
                    float(np.mean([r.trust_cost for r in result.records]))
                )
                stats["ct"].append(result.average_completion_time)
        rows[threshold] = {k: float(np.mean(v)) if v else float("nan") for k, v in stats.items()}
    return rows


def test_admission_control(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        headers=["Max TC", "Rejection rate", "Mean TC (admitted)", "Avg CT (admitted)"],
        title="Hard trust constraints with strict admission control (MCT).",
    )
    for threshold in THRESHOLDS:
        r = rows[threshold]
        table.add_row(
            threshold,
            format_percent(r["rejection"]),
            f"{r['tc']:.2f}",
            format_seconds(r["ct"]),
        )
    save_and_echo(results_dir, "admission_control", table.render())

    # Tighter bounds reject more and admit only better-trusted work.
    assert rows[6]["rejection"] == 0.0
    assert rows[0]["rejection"] >= rows[1]["rejection"] >= rows[2]["rejection"]
    assert rows[0]["tc"] <= rows[2]["tc"] <= rows[6]["tc"] + 1e-9
