"""Section 5.1 — MiSFIT / SASI x86SFI sandboxing overheads.

Paper values: hotlist 137 % / 264 %, log-disk 58 % / 65 %, MD5 33 % / 36 %.
"""

import numpy as np
from conftest import save_and_echo

from repro.experiments.tables import reproduce_sfi_overheads
from repro.security.sandbox import (
    BENCHMARK_APPS,
    MISFIT,
    SASI_X86SFI,
    simulate_sandboxed_run,
)


def test_sfi_sandboxing(benchmark, results_dir):
    repro = benchmark(reproduce_sfi_overheads)
    save_and_echo(results_dir, "sfi_sandboxing", repro.rendering)
    rows = repro.data["rows"]
    hotlist = rows["page-eviction hotlist"]
    assert 1.2 <= hotlist["misfit"] <= 1.55
    assert 2.3 <= hotlist["sasi"] <= 2.9
    assert 0.5 <= rows["logical log-structured disk"]["misfit"] <= 0.7
    assert 0.28 <= rows["MD5"]["misfit"] <= 0.40


def test_sfi_simulated_streams(benchmark, results_dir):
    """Sampled instruction streams converge to the analytic overheads."""
    rng = np.random.default_rng(0)

    def run_all():
        return {
            (app.name, tool.name): simulate_sandboxed_run(app, tool, rng)
            for app in BENCHMARK_APPS
            for tool in (MISFIT, SASI_X86SFI)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for (app_name, tool_name), overhead in results.items():
        assert overhead > 0.2, f"{app_name} under {tool_name} too cheap"
