"""Table 1 — the expected-trust-supplement matrix."""

from conftest import save_and_echo

from repro.experiments.tables import reproduce_table1


def test_table1_ets(benchmark, results_dir):
    repro = benchmark(reproduce_table1)
    save_and_echo(results_dir, "table1_ets", repro.rendering)
    # Shape assertions: the matrix is the paper's Table 1.
    assert repro.data["matrix"].shape == (6, 5)
    assert repro.data["matrix"][5].tolist() == [6, 6, 6, 6, 6]  # row F
    assert repro.data["matrix"][0].tolist() == [0, 0, 0, 0, 0]  # row A
