"""Table 4 — trust-aware vs unaware MCT, inconsistent LoLo (paper: ~37%)."""

from _scheduling import run_table_bench


def test_table4_mct_inconsistent(benchmark, results_dir):
    run_table_bench(benchmark, results_dir, 4, improvement_band=(0.25, 0.48))
