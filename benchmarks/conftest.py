"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, times it with
pytest-benchmark, and writes the rendered output (side by side with the
published values) to ``benchmarks/results/<name>.txt`` so the reproduction
evidence is inspectable after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benches drop their rendered tables."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_echo(results_dir: Path, name: str, rendering: str) -> None:
    """Persist a rendering and echo it to stdout (visible with ``-s``)."""
    path = results_dir / f"{name}.txt"
    path.write_text(rendering + "\n", encoding="utf-8")
    print(f"\n{rendering}\n[saved to {path}]")
