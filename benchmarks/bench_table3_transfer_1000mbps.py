"""Table 3 — rcp vs scp on a 1000 Mbps network."""

from conftest import save_and_echo

from repro.experiments.tables import reproduce_table2, reproduce_table3


def test_table3_transfer_1000mbps(benchmark, results_dir):
    repro = benchmark(reproduce_table3)
    save_and_echo(results_dir, "table3_transfer_1000mbps", repro.rendering)
    rows = repro.data["rows"]
    # Paper's headline: the security overhead negates the fast network —
    # steady-state overhead is much larger than on 100 Mbps (~67% vs ~37%).
    assert 0.55 <= rows[1000]["overhead"] <= 0.80
    t2 = reproduce_table2().data["rows"]
    for size in (100, 500, 1000):
        assert rows[size]["overhead"] > t2[size]["overhead"]
    # scp barely benefits from the 10x faster wire (cipher-bound).
    assert abs(rows[1000]["scp"] - t2[1000]["scp"]) / t2[1000]["scp"] < 0.05
