"""Extension bench — does trust-awareness cost per-domain fairness?

Trust-aware mapping favours well-trusted (CD, RD) pairings, so client
domains with poor trust standing could see systematically worse flow
times.  This bench measures Jain's fairness index over per-CD mean flow
times, aware vs unaware, across replications: the aware scheduler gives a
lower-but-still-high fairness, quantifying the equity price of the ~37 %
mean improvement.
"""

import numpy as np
from conftest import save_and_echo

from repro.experiments.config import paper_policies, paper_spec
from repro.experiments.runner import run_single
from repro.metrics.report import Table, format_percent
from repro.metrics.schedule import domain_fairness
from repro.workloads.consistency import Consistency
from repro.workloads.scenario import materialize

REPS = 20


def test_domain_fairness(benchmark, results_dir):
    aware, unaware = paper_policies()
    spec = paper_spec(60, Consistency.INCONSISTENT)

    def run_all():
        rows = {"trust-aware": [], "trust-unaware": []}
        for seed in range(REPS):
            scenario = materialize(spec, seed=seed)
            domain_of = {r.index: r.client_domain_index for r in scenario.requests}
            for label, policy in (("trust-aware", aware), ("trust-unaware", unaware)):
                result = run_single(spec, "mct", policy, seed)
                rows[label].append(domain_fairness(result.records, domain_of))
        return {k: float(np.mean(v)) for k, v in rows.items()}

    fairness = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = Table(
        headers=["Policy", "Mean Jain fairness (per-CD flow time)"],
        title=f"Equity of the schedules over {REPS} replications (MCT, 60 tasks).",
    )
    for label, value in fairness.items():
        table.add_row(label, format_percent(value))
    save_and_echo(results_dir, "domain_fairness", table.render())

    # Both policies stay reasonably fair; awareness may cost a few points
    # but must not collapse equity.
    assert fairness["trust-aware"] > 0.55
    assert fairness["trust-unaware"] > 0.55
