"""Supplementary figure — improvement vs offered load.

The paper evaluates at a single (unpublished) load; this series shows where
the trust advantage appears: negligible for an underloaded Grid (completion
is arrival-dominated) and converging to the service-cost ratio as the
machines saturate.
"""

from conftest import save_and_echo

from repro.experiments.series import ascii_chart, improvement_vs_load


def test_series_improvement_vs_load(benchmark, results_dir):
    series = benchmark.pedantic(
        improvement_vs_load,
        kwargs=dict(loads=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0), replications=8),
        rounds=1,
        iterations=1,
    )
    chart = ascii_chart(series)
    save_and_echo(results_dir, "series_improvement_vs_load", chart)
    ys = series.ys
    # Monotone-ish growth: saturated improvement well above the idle one.
    assert ys[-1] > ys[0] + 0.15
    assert ys[-1] > 0.25
