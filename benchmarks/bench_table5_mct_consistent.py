"""Table 5 — trust-aware vs unaware MCT, consistent LoLo (paper: ~34%)."""

from _scheduling import run_table_bench


def test_table5_mct_consistent(benchmark, results_dir):
    run_table_bench(benchmark, results_dir, 5, improvement_band=(0.25, 0.48))
