"""Scaling bench — trust-kernel perf trajectory (``BENCH_trust.json``).

Sweeps the batched Γ kernel (:meth:`TrustEngine.gamma_matrix`) against the
scalar :meth:`TrustEngine.gamma` double loop over growing entity
populations whose opinions follow the Table-6 OTL distribution, and — per
size — times a *wholesale* re-evaluation (every Grid domain mutated, every
shard rebuilt) against a *dirty-shard* re-evaluation (one domain mutated,
one shard rebuilt, all other Γ sub-rows served from the epoch-keyed memo).
The results land as a machine-readable JSON artifact at the repository
root.  The sweep itself lives in :mod:`repro.experiments.trustbench` so
``repro-trms bench trust`` regenerates the same artifact in one command.

Three entry points:

* ``test_trust_kernel_smoke`` — CI guard: runs the smallest size only and
  fails if the batched kernel falls behind the scalar reference by more
  than 1.5x (it should win by orders of magnitude; the slack absorbs
  CI-runner noise).  Bit-identity of the sampled rows is asserted inside
  the sweep.
* ``test_trust_scale_smoke`` — opt-in via ``BENCH_TRUST_SCALE=1``: runs
  the 10⁴-entity / 16-shard case and fails unless a dirty-shard re-eval
  costs at most ``DIRTY_SMOKE_RATIO`` (0.2x) of a wholesale rebuild — the
  regression-guard analogue of the 1.5x slowdown limit, with 2x slack
  under the artifact's 10x acceptance floor.  The same case also guards
  the durability path: a delta checkpoint (journal-tail fsync of <= 1%
  dirty entities) must cost at most ``DELTA_SMOKE_RATIO`` (0.2x) of a
  full snapshot rewrite.
* ``test_trust_kernel_full_sweep`` — the real sweep; opt-in via
  ``BENCH_TRUST_FULL=1``.  Writes ``BENCH_trust.json``.

The scalar reference walks the whole trust table per Γ call (cubic over a
full surface), so it is timed on ``REFERENCE_ROWS`` truster rows, runs
only up to ``SCALAR_CAP`` entities, and the comparison is per-row; above
the cap the surfaces are evaluated on ``LARGE_TRUSTER_ROWS`` trusters and
checked bit-identical against a from-scratch engine instead.  See the
trustbench module docstring.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.trustbench import (
    DEFAULT_ARTIFACT,
    DELTA_SMOKE_RATIO,
    DIRTY_SMOKE_RATIO,
    SIZES,
    SMOKE_SLOWDOWN_LIMIT,
    render_sweep,
    run_case,
    run_sweep,
    validate_trust_payload,
    write_artifact,
)

ARTIFACT = DEFAULT_ARTIFACT

#: Entity count of the BENCH_TRUST_SCALE=1 smoke (16 crc32 shards).
SCALE_SMOKE_ENTITIES = 10_000


def test_trust_kernel_smoke():
    payload = run_sweep(sizes=SIZES[:1], repeats=1)
    validate_trust_payload(payload)
    for entry in payload["results"]:
        assert entry["speedup"] >= 1.0 / SMOKE_SLOWDOWN_LIMIT, (
            f"batched Γ kernel fell behind the scalar reference "
            f"({entry['speedup']:.2f}x) at n_entities={entry['n_entities']}"
        )


def test_artifact_matches_schema():
    """The committed perf trajectory must stay machine-readable."""
    if not ARTIFACT.exists():
        pytest.skip(f"{ARTIFACT.name} not generated yet")
    validate_trust_payload(json.loads(ARTIFACT.read_text(encoding="utf-8")))


@pytest.mark.skipif(
    os.environ.get("BENCH_TRUST_SCALE") != "1",
    reason="trust scale smoke is opt-in: BENCH_TRUST_SCALE=1",
)
def test_trust_scale_smoke():
    """Dirty-shard re-eval must stay far cheaper than a wholesale rebuild."""
    entry = run_case(SCALE_SMOKE_ENTITIES, repeats=2)
    assert entry["n_shards"] >= 16, (
        f"scale smoke expected >= 16 shards, got {entry['n_shards']}"
    )
    assert entry["dirty_s"] <= DIRTY_SMOKE_RATIO * entry["wholesale_s"], (
        f"dirty-shard re-eval cost {entry['dirty_s']:.3f}s vs wholesale "
        f"{entry['wholesale_s']:.3f}s at n_entities={entry['n_entities']} "
        f"(ratio {entry['dirty_s'] / entry['wholesale_s']:.2f} > "
        f"{DIRTY_SMOKE_RATIO:g})"
    )
    # Delta-checkpoint regression guard: a journal-tail fsync of <= 1%
    # dirty entities must stay far cheaper than a full snapshot rewrite.
    ratio = entry["delta_checkpoint_s"] / entry["full_snapshot_s"]
    assert ratio <= DELTA_SMOKE_RATIO, (
        f"delta checkpoint cost {entry['delta_checkpoint_s']:.3f}s vs full "
        f"snapshot {entry['full_snapshot_s']:.3f}s at "
        f"n_entities={entry['n_entities']} (ratio {ratio:.2f} > "
        f"{DELTA_SMOKE_RATIO:g})"
    )


@pytest.mark.skipif(
    os.environ.get("BENCH_TRUST_FULL") != "1",
    reason="full sweep is opt-in: BENCH_TRUST_FULL=1",
)
def test_trust_kernel_full_sweep():
    payload = run_sweep(SIZES)
    path = write_artifact(payload)
    print(f"perf trajectory written to {path}\n{render_sweep(payload)}")
