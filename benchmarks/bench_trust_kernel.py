"""Scaling bench — trust-kernel perf trajectory (``BENCH_trust.json``).

Sweeps the batched Γ kernel (:meth:`TrustEngine.gamma_matrix`) against the
scalar :meth:`TrustEngine.gamma` double loop over growing entity
populations whose opinions follow the Table-6 OTL distribution, and
records per-row wall times plus the speedup as a machine-readable JSON
artifact at the repository root.  The sweep itself lives in
:mod:`repro.experiments.trustbench` so ``repro-trms bench trust``
regenerates the same artifact in one command.

Two entry points:

* ``test_trust_kernel_smoke`` — CI guard: runs the smallest size only and
  fails if the batched kernel falls behind the scalar reference by more
  than 1.5x (it should win by orders of magnitude; the slack absorbs
  CI-runner noise).  Bit-identity of the sampled rows is asserted inside
  the sweep.
* ``test_trust_kernel_full_sweep`` — the real sweep; opt-in via
  ``BENCH_TRUST_FULL=1``.  Writes ``BENCH_trust.json``.

The scalar reference walks the whole trust table per Γ call (cubic over a
full surface), so it is timed on ``REFERENCE_ROWS`` truster rows and the
comparison is per-row; see the trustbench module docstring.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.trustbench import (
    DEFAULT_ARTIFACT,
    SIZES,
    SMOKE_SLOWDOWN_LIMIT,
    render_sweep,
    run_sweep,
    validate_trust_payload,
    write_artifact,
)

ARTIFACT = DEFAULT_ARTIFACT


def test_trust_kernel_smoke():
    payload = run_sweep(sizes=SIZES[:1], repeats=1)
    validate_trust_payload(payload)
    for entry in payload["results"]:
        assert entry["speedup"] >= 1.0 / SMOKE_SLOWDOWN_LIMIT, (
            f"batched Γ kernel fell behind the scalar reference "
            f"({entry['speedup']:.2f}x) at n_entities={entry['n_entities']}"
        )


def test_artifact_matches_schema():
    """The committed perf trajectory must stay machine-readable."""
    if not ARTIFACT.exists():
        pytest.skip(f"{ARTIFACT.name} not generated yet")
    validate_trust_payload(json.loads(ARTIFACT.read_text(encoding="utf-8")))


@pytest.mark.skipif(
    os.environ.get("BENCH_TRUST_FULL") != "1",
    reason="full sweep is opt-in: BENCH_TRUST_FULL=1",
)
def test_trust_kernel_full_sweep():
    payload = run_sweep(SIZES)
    path = write_artifact(payload)
    print(f"perf trajectory written to {path}\n{render_sweep(payload)}")
