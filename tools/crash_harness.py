#!/usr/bin/env python
"""Crash-injection harness for the trust-plane write-ahead journal.

Drives a deterministic mixed workload (record / remove / observe /
declare / dissolve / grid set) through a
:class:`~repro.core.journal.DurableTrustPlane`, then re-runs it in a
subprocess that ``os._exit``-s at the *k*-th fsync boundary — the hook
installed via :func:`repro.core.journal.set_sync_hook` fires before and
after every ``fsync`` in the durability path (journal syncs, snapshot
segment/manifest syncs, directory syncs, CURRENT swaps), so sweeping
``k`` over every boundary kills the writer at every point the tentpole
contract covers.  After each kill the parent recovers the plane and
asserts **recovery equivalence**:

* the recovered state is *identical* — trust records, epoch counters,
  learned accuracies, alliances, grid levels, and a bit-identical Γ
  surface (batched kernel *and* scalar oracle) — to a fresh, uncrashed
  replay of exactly the op prefix recovery reports; and
* the **durability floor** holds: every op acknowledged by a completed
  ``checkpoint()`` before the kill is part of that prefix.

A torn-tail sweep then truncates (and bit-flips) the clean run's journal
at sampled byte offsets and asserts each recovery settles on some intact
prefix — torn frames truncate, they never poison or refuse recovery.

Usage::

    PYTHONPATH=src python tools/crash_harness.py            # full sweep
    PYTHONPATH=src python tools/crash_harness.py --quick    # CI-bounded

Exit status 0 when every kill point recovers equivalently.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.context import TrustContext  # noqa: E402
from repro.core.engine import TrustEngine  # noqa: E402
from repro.core.journal import (  # noqa: E402
    DurableTrustPlane,
    JournalConfig,
    TrustJournalError,
    set_sync_hook,
)
from repro.core.recommender import RecommenderWeights  # noqa: E402
from repro.core.tables import TrustTable  # noqa: E402
from repro.grid.trust_table import GridTrustTable  # noqa: E402

N_ENTITIES = 12
CONTEXT_NAMES = ("execute", "store")
GRID_SHAPE = (3, 4, 2)
CHILD_EXIT_CRASHED = 42


# -- deterministic workload -------------------------------------------------

def build_workload(seed: int, n_ops: int) -> list[tuple]:
    """A reproducible op sequence; every op is valid at its position."""
    rng = random.Random(seed)
    entities = [f"e{i}" for i in range(N_ENTITIES)]
    present: dict[tuple, None] = {}
    groups: dict[str, None] = {}
    group_seq = 0
    ops: list[tuple] = []
    for i in range(n_ops):
        r = rng.random()
        if r < 0.55 or (r < 0.62 and not present):
            z, y = rng.sample(entities, 2)
            c = rng.choice(CONTEXT_NAMES)
            ops.append(
                (
                    "record", z, y, c,
                    round(rng.random(), 6), float(i + 1), rng.randint(1, 5),
                )
            )
            present[(z, y, c)] = None
        elif r < 0.62:
            key = rng.choice(list(present))
            del present[key]
            ops.append(("remove", *key))
        elif r < 0.80:
            ops.append(
                (
                    "observe", rng.choice(entities),
                    round(rng.random(), 6), round(rng.random(), 6),
                )
            )
        elif r < 0.88:
            name = f"g{group_seq}"
            group_seq += 1
            ops.append(("declare", name, rng.sample(entities, 3)))
            groups[name] = None
        elif r < 0.92 and groups:
            name = rng.choice(list(groups))
            del groups[name]
            ops.append(("dissolve", name))
        else:
            ops.append(
                (
                    "set",
                    rng.randrange(GRID_SHAPE[0]),
                    rng.randrange(GRID_SHAPE[1]),
                    rng.randrange(GRID_SHAPE[2]),
                    rng.randint(1, 5),
                )
            )
    return ops


def fresh_state() -> tuple[TrustTable, RecommenderWeights, GridTrustTable]:
    return TrustTable(), RecommenderWeights(), GridTrustTable(*GRID_SHAPE)


def apply_workload_op(
    op: tuple,
    table: TrustTable,
    weights: RecommenderWeights,
    grid: GridTrustTable,
) -> None:
    kind = op[0]
    if kind == "record":
        _, z, y, c, v, t, n = op
        table.record(z, y, TrustContext(c), v, t, transaction_count=n)
    elif kind == "remove":
        _, z, y, c = op
        table.remove(z, y, TrustContext(c))
    elif kind == "observe":
        _, z, p, a = op
        weights.observe_outcome(z, p, a)
    elif kind == "declare":
        _, name, members = op
        weights.alliances.declare(name, members)
    elif kind == "dissolve":
        weights.alliances.dissolve(op[1])
    elif kind == "set":
        _, cd, rd, k, level = op
        grid.set(cd, rd, k, level)
    else:  # pragma: no cover - generator invariant
        raise AssertionError(f"unknown workload op {kind!r}")


# -- state comparison -------------------------------------------------------

def state_fingerprint(
    table: TrustTable, weights: RecommenderWeights, grid: GridTrustTable
) -> tuple:
    """Everything recovery must reproduce exactly, as comparable data."""
    return (
        # Sorted: snapshot restore replays rows in shard order, not the
        # live table's insertion order; contents must match, order may not.
        sorted(
            (z, y, c.name, r.value, r.last_transaction, r.transaction_count)
            for (z, y, c), r in table.items()
        ),
        table.epoch,
        sorted(table.domain_epochs().items(), key=repr),
        sorted(weights._accuracy.items()),
        (weights._epoch, sorted(weights._domain_epochs.items(), key=repr)),
        {
            name: sorted(weights.alliances._groups[name])
            for name in weights.alliances._groups
        },
        (
            weights.alliances._epoch,
            sorted(weights.alliances._domain_epochs.items(), key=repr),
        ),
        grid.levels.tolist(),
        (grid.epoch, sorted(grid._cd_epochs.items())),
    )


def assert_equivalent(
    recovered: tuple[TrustTable, RecommenderWeights, GridTrustTable],
    oracle: tuple[TrustTable, RecommenderWeights, GridTrustTable],
    label: str,
) -> None:
    """Recovered state must equal the oracle bit-for-bit, Γ included."""
    got = state_fingerprint(*recovered)
    want = state_fingerprint(*oracle)
    if got != want:
        for g, w, part in zip(
            got, want,
            ("records", "epoch", "domain epochs", "accuracy", "w-epochs",
             "groups", "a-epochs", "grid", "g-epochs"),
        ):
            if g != w:
                raise AssertionError(
                    f"{label}: {part} diverged\n  recovered={g!r}\n  "
                    f"oracle={w!r}"
                )
    entities = [f"e{i}" for i in range(N_ENTITIES)]
    now = 1e6
    for c in CONTEXT_NAMES:
        ctx = TrustContext(c)
        eng_r = TrustEngine.build(table=recovered[0], weights=recovered[1])
        eng_o = TrustEngine.build(table=oracle[0], weights=oracle[1])
        surf_r = eng_r.gamma_matrix(entities, entities, ctx, now)
        surf_o = eng_o.gamma_matrix(entities, entities, ctx, now)
        if not np.array_equal(surf_r, surf_o):
            raise AssertionError(f"{label}: Γ surface diverged in {c!r}")
        for z, y in ((entities[0], entities[1]), (entities[2], entities[5])):
            if eng_r.gamma(z, y, ctx, now) != eng_o.gamma(z, y, ctx, now):
                raise AssertionError(
                    f"{label}: scalar Γ({z}, {y}) diverged in {c!r}"
                )


def oracle_prefix(
    ops: list[tuple], n: int
) -> tuple[TrustTable, RecommenderWeights, GridTrustTable]:
    table, weights, grid = fresh_state()
    for op in ops[:n]:
        apply_workload_op(op, table, weights, grid)
    return table, weights, grid


# -- child process ----------------------------------------------------------

def run_child(
    root: Path,
    ops: list[tuple],
    sync_every: int,
    compact_at: int | None,
    crash_at: int,
) -> int:
    """Workload body; returns the total number of fsync-boundary events.

    With ``crash_at >= 0`` the process ``os._exit``-s the instant the
    hook fires for the ``crash_at``-th time — no cleanup, no flushing,
    the closest a single process gets to ``kill -9``.
    """
    events = 0

    def hook(phase: str, kind: str, path: Path) -> None:
        nonlocal events
        if events == crash_at:
            os._exit(CHILD_EXIT_CRASHED)
        events += 1

    acks = root.parent / "acks.jsonl"

    def ack(n_applied: int, plane: DurableTrustPlane) -> None:
        # Plain appended+fsynced line, deliberately outside the hook seam:
        # the ack is the parent's ground truth for the durability floor
        # and must not shift the swept kill points.
        with acks.open("a", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "n": n_applied,
                        "generation": plane.generation,
                        "offset": plane.journal_offset,
                    }
                )
                + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())

    set_sync_hook(hook)
    try:
        table, weights, grid = fresh_state()
        plane = DurableTrustPlane.create(
            root,
            table,
            weights,
            grid_table=grid,
            # Compaction is triggered explicitly (compact_at) so the
            # parent can map recovered-op counts back to workload ops.
            config=JournalConfig(min_compact_bytes=1 << 30),
        )
        for i, op in enumerate(ops):
            apply_workload_op(op, table, weights, grid)
            if (i + 1) % sync_every == 0:
                plane.checkpoint()
                ack(i + 1, plane)
            if compact_at is not None and i + 1 == compact_at:
                plane.compact()
                ack(i + 1, plane)
        plane.checkpoint()
        ack(len(ops), plane)
        plane.close()
    finally:
        set_sync_hook(None)
    return events


def child_main() -> None:
    spec = json.loads(os.environ["CRASH_HARNESS_SPEC"])
    ops = build_workload(spec["seed"], spec["n_ops"])
    events = run_child(
        Path(spec["root"]),
        ops,
        spec["sync_every"],
        spec["compact_at"],
        spec["crash_at"],
    )
    print(json.dumps({"events": events}))


# -- parent-side verification ----------------------------------------------

def verify_root(
    root: Path,
    ops: list[tuple],
    compact_at: int | None,
    label: str,
) -> None:
    """Recover ``root`` and assert recovery-equivalence + durability floor."""
    acks_path = root.parent / "acks.jsonl"
    acks = []
    if acks_path.is_file():
        acks = [
            json.loads(line)
            for line in acks_path.read_text().splitlines()
            if line.strip()
        ]
    try:
        plane = DurableTrustPlane.recover(root)
    except TrustJournalError as exc:
        if acks:
            raise AssertionError(
                f"{label}: recovery refused ({exc}) after "
                f"{len(acks)} acknowledged checkpoints"
            ) from exc
        # Killed before provisioning completed: the plane never promised
        # anything, a typed refusal is the contract.
        return
    if plane.generation == 0:
        n = plane.recovered_ops
    else:
        # Ops before the explicit compaction live in the folded base.
        assert compact_at is not None, f"{label}: unexpected generation"
        n = compact_at + plane.recovered_ops
    if not 0 <= n <= len(ops):
        raise AssertionError(f"{label}: recovered {n} ops of {len(ops)}")
    assert_equivalent(
        (plane.table, plane.weights, plane.grid_table),
        oracle_prefix(ops, n),
        label,
    )
    floor = max((a["n"] for a in acks), default=0)
    if n < floor:
        raise AssertionError(
            f"{label}: durability floor violated — recovered {n} ops but "
            f"a completed checkpoint acknowledged {floor}"
        )
    plane.close()


def spawn_child(
    workdir: Path, spec: dict, crash_at: int
) -> tuple[int, str]:
    root = workdir / "plane"
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    env = dict(os.environ)
    env["CRASH_HARNESS_SPEC"] = json.dumps(
        {**spec, "root": str(root), "crash_at": crash_at}
    )
    env["CRASH_HARNESS_CHILD"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve())],
        env=env,
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout


def kill_point_sweep(
    base: Path, spec: dict, ops: list[tuple], stride: int
) -> tuple[int, int]:
    """Kill the child at every ``stride``-th fsync-boundary event."""
    # Clean run first: counts the boundary events and feeds the torn sweep.
    clean_dir = base / "clean"
    code, out = spawn_child(clean_dir, spec, crash_at=-1)
    if code != 0:
        raise AssertionError(f"clean run failed with exit {code}: {out}")
    total_events = json.loads(out.splitlines()[-1])["events"]
    verify_root(clean_dir / "plane", ops, spec["compact_at"], "clean run")
    swept = 0
    for k in range(0, total_events, stride):
        workdir = base / "kill"
        code, out = spawn_child(workdir, spec, crash_at=k)
        if code != CHILD_EXIT_CRASHED:
            raise AssertionError(
                f"kill point {k}: child exited {code} instead of crashing "
                f"({out})"
            )
        verify_root(
            workdir / "plane", ops, spec["compact_at"], f"kill point {k}"
        )
        swept += 1
    return total_events, swept


def torn_tail_sweep(
    base: Path, spec: dict, ops: list[tuple], stride: int
) -> int:
    """Truncate/corrupt the clean journal at sampled offsets and recover."""
    clean_root = base / "clean" / "plane"
    generation = json.loads((clean_root / "CURRENT").read_text())["generation"]
    journal = clean_root / f"journal-{generation}.wal"
    size = journal.stat().st_size
    checked = 0
    offsets = list(range(0, size, stride)) + [max(0, size - 1)]
    for cut in offsets:
        workdir = base / "torn"
        if workdir.exists():
            shutil.rmtree(workdir)
        shutil.copytree(base / "clean", workdir)
        target = workdir / "plane" / f"journal-{generation}.wal"
        with target.open("r+b") as fh:
            fh.truncate(cut)
        # No acks file in the torn copy: losing acknowledged ops to a
        # *post-mortem* truncation is detection, not a floor violation.
        (workdir / "acks.jsonl").unlink(missing_ok=True)
        verify_root(
            workdir / "plane", ops, spec["compact_at"], f"torn cut@{cut}"
        )
        checked += 1
    # Bit-flips inside tail frames: CRC catches them, recovery truncates.
    rng = random.Random(spec["seed"] + 1)
    for flip in sorted(rng.sample(range(size), min(8, size))):
        workdir = base / "torn"
        if workdir.exists():
            shutil.rmtree(workdir)
        shutil.copytree(base / "clean", workdir)
        target = workdir / "plane" / f"journal-{generation}.wal"
        data = bytearray(target.read_bytes())
        data[flip] ^= 0x40
        target.write_bytes(bytes(data))
        (workdir / "acks.jsonl").unlink(missing_ok=True)
        verify_root(
            workdir / "plane", ops, spec["compact_at"], f"bitflip@{flip}"
        )
        checked += 1
    return checked


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=60)
    parser.add_argument("--sync-every", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--compact-at", type=int, default=None,
        help="workload index after which the plane compacts (default: "
        "2/3 through the run)",
    )
    parser.add_argument(
        "--stride", type=int, default=1,
        help="sweep every Nth fsync-boundary kill point",
    )
    parser.add_argument(
        "--torn-stride", type=int, default=7,
        help="truncate the clean journal at every Nth byte offset",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI bound: fewer ops, strided kill points",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.ops = min(args.ops, 36)
        args.stride = max(args.stride, 3)
        args.torn_stride = max(args.torn_stride, 13)
    compact_at = (
        args.compact_at
        if args.compact_at is not None
        else (2 * args.ops) // 3
    )
    spec = {
        "seed": args.seed,
        "n_ops": args.ops,
        "sync_every": args.sync_every,
        "compact_at": compact_at,
    }
    ops = build_workload(args.seed, args.ops)
    base = Path(tempfile.mkdtemp(prefix="crash-harness-"))
    try:
        total_events, swept = kill_point_sweep(base, spec, ops, args.stride)
        torn = torn_tail_sweep(base, spec, ops, args.torn_stride)
    finally:
        shutil.rmtree(base, ignore_errors=True)
    print(
        f"crash harness OK: {swept} of {total_events} fsync-boundary kill "
        f"points swept (stride {args.stride}), {torn} torn-tail/bit-flip "
        f"recoveries verified, {args.ops} ops, sync every "
        f"{args.sync_every}, compaction at {compact_at}"
    )
    return 0


if __name__ == "__main__":
    if os.environ.get("CRASH_HARNESS_CHILD") == "1":
        child_main()
    else:
        sys.exit(main())
